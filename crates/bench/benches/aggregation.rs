//! Criterion microbench backing Figure 9: aggregation algorithms across
//! model sizes (reduced sizes; the `fig09` binary runs paper scale).
//!
//! PathORAM aggregation runs at every `d` up to 1 000 by default and at
//! d = 10 000 when `OLIVE_BENCH_FULL=1` (with the O(d) ORAM construction
//! amortized out of the timed loop); anything gated out says so instead
//! of silently vanishing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olive_bench::synthetic_updates;
use olive_core::aggregation::oram::{aggregate_oram_into, build_aggregation_oram};
use olive_core::aggregation::{aggregate, AggregatorKind};
use olive_core::cell::concat_cells;
use olive_memsim::NullTracer;
use olive_oram::PosMapKind;

fn bench_aggregation(c: &mut Criterion) {
    let full = std::env::var("OLIVE_BENCH_FULL").as_deref() == Ok("1");
    let mut group = c.benchmark_group("aggregation_vs_model_size");
    group.sample_size(10);
    for d in [1_000usize, 10_000, 100_000] {
        let k = (d / 100).max(1);
        let n = 100;
        let updates = synthetic_updates(n, k, d, 1);
        group.bench_with_input(BenchmarkId::new("non_oblivious", d), &d, |b, &d| {
            b.iter(|| aggregate(AggregatorKind::NonOblivious, &updates, d, &mut NullTracer))
        });
        group.bench_with_input(BenchmarkId::new("baseline_c16", d), &d, |b, &d| {
            b.iter(|| {
                aggregate(
                    AggregatorKind::Baseline { cacheline_weights: 16 },
                    &updates,
                    d,
                    &mut NullTracer,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("advanced", d), &d, |b, &d| {
            b.iter(|| aggregate(AggregatorKind::Advanced, &updates, d, &mut NullTracer))
        });
        if d <= 1_000 {
            group.bench_with_input(BenchmarkId::new("path_oram", d), &d, |b, &d| {
                b.iter(|| {
                    aggregate(
                        AggregatorKind::PathOram { posmap: PosMapKind::LinearScan },
                        &updates,
                        d,
                        &mut NullTracer,
                    )
                })
            });
        } else if full && d <= 10_000 {
            // Paper-faithful ORAM cost per aggregation *round*: the ORAM
            // is a long-lived structure, so its O(d) construction is
            // amortized out of the timed loop (aggregate_oram_into resets
            // slots as it reads them back, so every iteration computes a
            // fresh aggregate).
            let cells = concat_cells(&updates);
            let mut oram = build_aggregation_oram(d, PosMapKind::LinearScan);
            group.bench_with_input(BenchmarkId::new("path_oram", d), &d, |b, &d| {
                b.iter(|| aggregate_oram_into(&mut oram, &cells, d, n, &mut NullTracer))
            });
        } else {
            println!(
                "bench: aggregation_vs_model_size/path_oram/{d} ... skipped \
                 ({}; set OLIVE_BENCH_FULL=1 to bench PathORAM at d = 10 000)",
                if full { "full sweep caps PathORAM at d = 10 000" } else { "d > 1 000" }
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
