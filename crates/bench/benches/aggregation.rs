//! Criterion microbench backing Figure 9: aggregation algorithms across
//! model sizes (reduced sizes; the `fig09` binary runs paper scale).
//!
//! PathORAM aggregation runs at d ≤ 1 000 (linear-scan posmap, the
//! historical entry) and d = 10 000 (recursive posmap — the fast path)
//! by default, and at d = 100 000 when `OLIVE_BENCH_FULL=1`, with the
//! O(d) ORAM construction amortized out of the timed loop and an
//! `oram_round:` machine-readable record per recursive size; anything
//! gated out says so instead of silently vanishing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olive_bench::synthetic_updates;
use olive_core::aggregation::oram::{aggregate_oram_into, build_aggregation_oram};
use olive_core::aggregation::{aggregate, AggregatorKind};
use olive_core::cell::concat_cells;
use olive_memsim::NullTracer;
use olive_oram::PosMapKind;

fn bench_aggregation(c: &mut Criterion) {
    let full = std::env::var("OLIVE_BENCH_FULL").as_deref() == Ok("1");
    let mut group = c.benchmark_group("aggregation_vs_model_size");
    group.sample_size(10);
    for d in [1_000usize, 10_000, 100_000] {
        let k = (d / 100).max(1);
        let n = 100;
        let updates = synthetic_updates(n, k, d, 1);
        group.bench_with_input(BenchmarkId::new("non_oblivious", d), &d, |b, &d| {
            b.iter(|| aggregate(AggregatorKind::NonOblivious, &updates, d, &mut NullTracer))
        });
        group.bench_with_input(BenchmarkId::new("baseline_c16", d), &d, |b, &d| {
            b.iter(|| {
                aggregate(
                    AggregatorKind::Baseline { cacheline_weights: 16 },
                    &updates,
                    d,
                    &mut NullTracer,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("advanced", d), &d, |b, &d| {
            b.iter(|| aggregate(AggregatorKind::Advanced, &updates, d, &mut NullTracer))
        });
        if d <= 1_000 {
            group.bench_with_input(BenchmarkId::new("path_oram", d), &d, |b, &d| {
                b.iter(|| {
                    aggregate(
                        AggregatorKind::PathOram { posmap: PosMapKind::LinearScan },
                        &updates,
                        d,
                        &mut NullTracer,
                    )
                })
            });
        } else if d <= 10_000 || full {
            // Paper-faithful ORAM cost per aggregation *round* on the
            // recursive (deployment-realistic) position map: the ORAM is
            // a long-lived structure, so its O(d) construction is
            // amortized out of the timed loop (aggregate_oram_into resets
            // slots as it reads them back, so every iteration computes a
            // fresh aggregate). d = 10 000 runs by default since the
            // batched kernel landed; d = 100 000 stays behind
            // OLIVE_BENCH_FULL=1 (it is ~1M ORAM accesses per iteration).
            let cells = concat_cells(&updates);
            let mut oram = build_aggregation_oram(d, PosMapKind::Recursive);
            group.bench_with_input(BenchmarkId::new("path_oram", d), &d, |b, &d| {
                b.iter(|| aggregate_oram_into(&mut oram, &cells, d, n, &mut NullTracer))
            });
            // One measured round against a fresh ORAM (deterministic
            // counters — bench iterations above would skew them) emits
            // the machine-readable `oram_round:` record on both
            // channels: the telemetry stream and the legacy stdout line.
            let mut fresh = build_aggregation_oram(d, PosMapKind::Recursive);
            let start = std::time::Instant::now();
            let out = aggregate_oram_into(&mut fresh, &cells, d, n, &mut NullTracer);
            let ns = start.elapsed().as_nanos() as u64;
            std::hint::black_box(out);
            let stats = fresh.stats();
            let kernel = match olive_oram::oram_kernel() {
                olive_oram::OramKernel::Scalar => "scalar",
                olive_oram::OramKernel::Batched => "batched",
            };
            let resident = fresh.resident_bytes();
            olive_telemetry::Telemetry::from_env().bench(
                "oram_round",
                &[
                    ("d", (d as u64).into()),
                    ("k", (k as u64).into()),
                    ("n", (n as u64).into()),
                    ("posmap", "recursive".into()),
                    ("kernel", kernel.into()),
                    ("accesses", stats.accesses.into()),
                    ("evicted_blocks", stats.evicted_blocks.into()),
                    ("max_stash_occupancy", stats.max_stash_occupancy.into()),
                    ("resident_bytes", resident.into()),
                ],
                &[("ns", ns.into())],
            );
            println!(
                "oram_round: {{\"d\":{d},\"k\":{k},\"n\":{n},\"posmap\":\"recursive\",\
                 \"kernel\":\"{kernel}\",\"accesses\":{},\"evicted_blocks\":{},\
                 \"max_stash_occupancy\":{},\"resident_bytes\":{resident},\"ns\":{ns}}}",
                stats.accesses, stats.evicted_blocks, stats.max_stash_occupancy,
            );
        } else {
            println!(
                "bench: aggregation_vs_model_size/path_oram/{d} ... skipped \
                 (set OLIVE_BENCH_FULL=1 to bench PathORAM at d = 100 000)"
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
