//! Criterion microbench backing Figure 11: the grouped-Advanced U-curve,
//! plus the thread-scaling sweep for the parallel grouped aggregation.
//!
//! The `h` sweep uses the process-default thread count (`OLIVE_THREADS`,
//! else `available_parallelism().min(8)`), so `OLIVE_THREADS=1 cargo
//! bench` reproduces the serial baselines in `CHANGES.md`. The
//! `threads` sweep pins the count explicitly at the Figure 11 sweet-spot
//! group size to measure parallel speedup directly: ≥2× at 4 threads on a
//! 4-core machine is the target (the carry and averaging stay serial, so
//! perfect scaling is not expected).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olive_bench::synthetic_updates;
use olive_core::aggregation::grouped::aggregate_grouped_with_threads;
use olive_core::aggregation::{aggregate, AggregatorKind};
use olive_memsim::NullTracer;

fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouped_advanced_h_sweep");
    group.sample_size(10);
    let d = 50_890;
    let k = 509; // alpha = 0.01 keeps the bench fast
    let n = 512;
    let updates = synthetic_updates(n, k, d, 2);
    for h in [8usize, 32, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| aggregate(AggregatorKind::Grouped { h }, &updates, d, &mut NullTracer))
        });
    }
    group.finish();
}

fn bench_grouping_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouped_advanced_threads_d100k");
    group.sample_size(10);
    let d = 100_000;
    let k = 1_000; // alpha = 0.01
    let n = 512;
    let h = 64; // per-group sort vector (hk + d → 256k cells) ≈ L3-sized
    let updates = synthetic_updates(n, k, d, 2);
    let max = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    // Always run t ∈ {1, 2} (2 exercises the fork/join path even on a
    // single core); higher counts only where the hardware can use them.
    let mut counts = vec![1usize, 2, 4, 8];
    counts.retain(|&t| t <= max.max(2));
    for threads in counts {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| aggregate_grouped_with_threads(&updates, d, h, threads, &mut NullTracer))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grouping, bench_grouping_threads);
criterion_main!(benches);
