//! Criterion microbench backing Figure 11: the grouped-Advanced U-curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olive_bench::synthetic_updates;
use olive_core::aggregation::{aggregate, AggregatorKind};
use olive_memsim::NullTracer;

fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouped_advanced_h_sweep");
    group.sample_size(10);
    let d = 50_890;
    let k = 509; // alpha = 0.01 keeps the bench fast
    let n = 512;
    let updates = synthetic_updates(n, k, d, 2);
    for h in [8usize, 32, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| aggregate(AggregatorKind::Grouped { h }, &updates, d, &mut NullTracer))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
