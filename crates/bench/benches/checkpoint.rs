//! Crash-safe checkpoint overhead: what the per-chunk seal costs on the
//! streaming ingestion path, and what a restore costs, at n = 1000
//! clients (k = 128, d = 16384).
//!
//! `ckpt_off/{chunk}` is the plain streaming pass; `ckpt_on/{chunk}`
//! additionally seals the round checkpoint (aggregator state +
//! replay-floor snapshot, `"round-ckpt"` label) after every folded
//! chunk, exactly as `OliveSystem::run_round` does by default. The gap
//! between the two is the crash-safety tax.
//!
//! Two aggregators bracket that tax:
//!
//! * `grouped` — the production oblivious pipeline (group size = chunk).
//!   Each chunk pays an oblivious group sort, so the one extra seal per
//!   chunk amortizes to a few percent. **The acceptance bar — ≤ 10%
//!   overhead at the default `OLIVE_CHUNK=64` — is pinned on this line**,
//!   because it is what the default round actually runs.
//! * `linear` — the `NonOblivious` fold, the cheapest ingestion the rig
//!   can do. Sealing a d-sized accumulator every 64 clients moves about
//!   as many bytes through AES-GCM as opening the uploads themselves, so
//!   this worst case sits far above the bar by construction; it is
//!   reported to keep the absolute seal cost visible.
//!
//! Before timing, each configuration prints one machine-readable line:
//!
//! ```text
//! checkpoint_overhead: {"agg":"grouped","n":1000,...,"chunk":64,"plain_ns":...,"ckpt_ns":...,"overhead_pct":...}
//! ```
//!
//! `restore/64` is the recovery path: unseal, rewind replay floors,
//! rebuild the aggregator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olive_bench::ingest::IngestionRig;
use olive_core::aggregation::AggregatorKind;
use std::cell::RefCell;

const N: usize = 1_000;
const K: usize = 128;
const D: usize = 16_384;

fn kind_name(kind: AggregatorKind) -> &'static str {
    match kind {
        AggregatorKind::NonOblivious => "linear",
        AggregatorKind::Grouped { .. } => "grouped",
        _ => "other",
    }
}

/// Median-of-5 overhead of the per-chunk checkpoint, printed as one JSON
/// line so CI logs carry the ratio directly. Both phases are timed
/// *inside the same pass* (`ingest_ns` = open + fold + finalize,
/// `ckpt_ns` = state/floor snapshot + seal): comparing two separate
/// passes wall-clock to wall-clock lets ±10% run-to-run jitter drown a
/// few-percent effect, while the in-pass ratio is stable.
fn overhead_report(rig: &mut IngestionRig, kind: AggregatorKind, chunk: usize) {
    let mut runs = Vec::new();
    for _ in 0..5 {
        let msgs = rig.seal_round();
        let (_, _, ingest_ns, ckpt_ns) = rig.streaming_pass_checkpointed_timed(&msgs, kind, chunk);
        runs.push((ckpt_ns as f64 / ingest_ns as f64, ingest_ns, ckpt_ns));
    }
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (ratio, ingest_ns, ckpt_ns) = runs[2];
    let overhead = ratio * 100.0;
    let agg = kind_name(kind);
    // Telemetry is the canonical machine-readable stream now
    // (`OLIVE_METRICS`); the println prefix below is a compat shim for
    // existing log scrapers, kept for one release.
    olive_telemetry::Telemetry::from_env().bench(
        "checkpoint_overhead",
        &[
            ("agg", agg.into()),
            ("n", (N as u64).into()),
            ("k", (K as u64).into()),
            ("d", (D as u64).into()),
            ("chunk", (chunk as u64).into()),
        ],
        &[
            ("ingest_ns", ingest_ns.into()),
            ("ckpt_ns", ckpt_ns.into()),
            ("overhead_pct", overhead.into()),
        ],
    );
    println!(
        "checkpoint_overhead: {{\"agg\":\"{agg}\",\"n\":{N},\"k\":{K},\"d\":{D},\"chunk\":{chunk},\
         \"ingest_ns\":{ingest_ns},\"ckpt_ns\":{ckpt_ns},\"overhead_pct\":{overhead:.2}}}"
    );
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_checkpoint");
    group.sample_size(10);
    let rig = RefCell::new(IngestionRig::new(N, K, D, 42));

    // The acceptance line: the production oblivious round at the default
    // chunk, checkpointing on vs off.
    let prod = AggregatorKind::Grouped { h: 64 };
    overhead_report(&mut rig.borrow_mut(), prod, 64);
    for (label, on) in [("grouped_off", false), ("grouped_on", true)] {
        group.bench_with_input(BenchmarkId::new(label, 64usize), &on, |b, &on| {
            b.iter(|| {
                let mut rig = rig.borrow_mut();
                let msgs = rig.seal_round();
                if on {
                    rig.streaming_pass_checkpointed(&msgs, prod, 64).0
                } else {
                    rig.streaming_pass(&msgs, prod, 64, true, None)
                }
            })
        });
    }

    // Worst-case stress: the linear fold across chunk sizes.
    let linear = AggregatorKind::NonOblivious;
    for &chunk in &[1usize, 7, 64] {
        overhead_report(&mut rig.borrow_mut(), linear, chunk);
        group.bench_with_input(BenchmarkId::new("ckpt_off", chunk), &chunk, |b, &ch| {
            b.iter(|| {
                let mut rig = rig.borrow_mut();
                let msgs = rig.seal_round();
                rig.streaming_pass(&msgs, linear, ch, true, None)
            })
        });
        group.bench_with_input(BenchmarkId::new("ckpt_on", chunk), &chunk, |b, &ch| {
            b.iter(|| {
                let mut rig = rig.borrow_mut();
                let msgs = rig.seal_round();
                rig.streaming_pass_checkpointed(&msgs, linear, ch)
            })
        });
    }

    // The recovery path, on a blob from a full round at the default chunk.
    let blob = {
        let mut rig = rig.borrow_mut();
        let msgs = rig.seal_round();
        let (_, blob) = rig.streaming_pass_checkpointed(&msgs, linear, 64);
        blob
    };
    group.bench_with_input(BenchmarkId::new("restore", 64usize), &blob, |b, blob| {
        b.iter(|| rig.borrow_mut().restore_checkpoint(blob, linear))
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
