//! Round-ingestion bench: streaming vs materialize-all, batched vs
//! serial `open_upload`, at n ∈ {1k, 10k, 100k} clients.
//!
//! Each iteration is one full round of enclave-side upload processing —
//! seal (client side, unavoidable: GCM nonces are single-use), open,
//! decode, fold — with k = 128 cells per client and d = 16384, so at
//! n = 100k the materialize-all pipeline stages n·k·8 ≈ 102 MiB of cells
//! inside the enclave: **over the 96 MiB EPC budget**, while the
//! streaming pipeline peaks at O(chunk·k + d) ≈ a quarter MiB. The
//! working-set report below makes that machine-readable.
//!
//! Before timing, each configuration runs once under [`WorkingSet`]
//! accounting (charged exactly as `OliveSystem::run_round` charges the
//! EPC budget) and prints one line per config:
//!
//! ```text
//! ingestion_ws: {"config":"streaming_batch","n":100000,...,"peak_bytes":...,"would_page":false}
//! ```
//!
//! The shard sweep (S ∈ {1, 2, 4, 8}) runs the same round through a
//! provisioned shard plane: the `Advanced` working-set pass prints one
//! `ingestion_ws:` line **per shard** with that shard's *measured* EPC
//! peak (`"config":"sharded_advanced"`, keyed by `"shards"` and
//! `"shard"`), demonstrating the Figure-10 cliff dissolving as S grows;
//! the timed `sharded_s{S}` benches (NonOblivious fold, like the other
//! timed configs) price the tunnel transport itself.
//!
//! At n = 10k the sweep also prints one `recovery_overhead:` line —
//! the cost of the per-chunk stripe checkpoint (sharded vs
//! checkpointed-sharded, S = 4) and of one full mid-round shard
//! failover (scripted kill at chunk 20 → relaunch, re-attest, restore
//! from the sealed stripe checkpoint, resume), with the recovered
//! delta asserted bitwise against the fault-free pass in-bench.
//!
//! `OLIVE_BENCH_FULL=1` includes n = 100k; the default sweep stops at
//! 10k so the CI smoke job stays fast. Timings land in `OLIVE_BENCH_JSON`
//! like every other bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olive_bench::ingest::IngestionRig;
use olive_core::aggregation::AggregatorKind;
use olive_memsim::{FaultPlan, WorkingSet};
use std::cell::RefCell;

const K: usize = 128;
const D: usize = 16_384;
const CHUNK: usize = 256;

fn ws_report(rig: &mut IngestionRig, config: &str, chunk: Option<usize>) {
    let kind = AggregatorKind::NonOblivious;
    let msgs = rig.seal_round();
    let mut ws = WorkingSet::default();
    match chunk {
        Some(c) => {
            rig.streaming_pass(&msgs, kind, c, true, Some(&mut ws));
        }
        None => {
            rig.materialize_pass(&msgs, kind, true, Some(&mut ws));
        }
    }
    let limit = rig.epc_limit();
    // Telemetry is the canonical machine-readable stream now
    // (`OLIVE_METRICS`); the println prefix below is a compat shim for
    // existing log scrapers, kept for one release.
    olive_telemetry::Telemetry::from_env().bench(
        "ingestion_ws",
        &[
            ("config", config.into()),
            ("n", (rig.n() as u64).into()),
            ("k", (K as u64).into()),
            ("d", (D as u64).into()),
            ("chunk", (chunk.unwrap_or_else(|| rig.n()) as u64).into()),
            ("peak_bytes", ws.peak.into()),
            ("epc_limit", limit.into()),
            ("would_page", (ws.peak > limit).into()),
        ],
        &[],
    );
    println!(
        "ingestion_ws: {{\"config\":\"{config}\",\"n\":{},\"k\":{K},\"d\":{D},\"chunk\":{},\
         \"peak_bytes\":{},\"epc_limit\":{limit},\"would_page\":{}}}",
        rig.n(),
        chunk.map_or_else(|| rig.n().to_string(), |c| c.to_string()),
        ws.peak,
        ws.peak > limit,
    );
}

fn bench_ingestion(c: &mut Criterion) {
    let full = std::env::var("OLIVE_BENCH_FULL").is_ok();
    let sizes: &[usize] = if full { &[1_000, 10_000, 100_000] } else { &[1_000, 10_000] };
    if !full {
        println!("ingestion: n = 100000 skipped (set OLIVE_BENCH_FULL=1 to include it)");
    }
    let mut group = c.benchmark_group("round_ingestion");
    group.sample_size(10);
    for &n in sizes {
        let rig = RefCell::new(IngestionRig::new(n, K, D, 42));
        // The memory story, printed once per configuration before timing.
        ws_report(&mut rig.borrow_mut(), "streaming_batch", Some(CHUNK));
        ws_report(&mut rig.borrow_mut(), "materialize_all", None);

        let kind = AggregatorKind::NonOblivious;
        group.bench_with_input(BenchmarkId::new("streaming_batch", n), &n, |b, _| {
            b.iter(|| {
                let mut rig = rig.borrow_mut();
                let msgs = rig.seal_round();
                rig.streaming_pass(&msgs, kind, CHUNK, true, None)
            })
        });
        group.bench_with_input(BenchmarkId::new("streaming_serial", n), &n, |b, _| {
            b.iter(|| {
                let mut rig = rig.borrow_mut();
                let msgs = rig.seal_round();
                rig.streaming_pass(&msgs, kind, CHUNK, false, None)
            })
        });
        group.bench_with_input(BenchmarkId::new("materialize_batch", n), &n, |b, _| {
            b.iter(|| {
                let mut rig = rig.borrow_mut();
                let msgs = rig.seal_round();
                rig.materialize_pass(&msgs, kind, true, None)
            })
        });
        group.bench_with_input(BenchmarkId::new("materialize_serial", n), &n, |b, _| {
            b.iter(|| {
                let mut rig = rig.borrow_mut();
                let msgs = rig.seal_round();
                rig.materialize_pass(&msgs, kind, false, None)
            })
        });

        // The shard sweep: measured per-shard peaks under the Advanced
        // aggregator (the kind whose sort working set overflows a 96 MiB
        // EPC at n = 100k), then the transport-cost timing.
        for shards in [1usize, 2, 4, 8] {
            let rt = {
                let mut rig = rig.borrow_mut();
                let rt = rig.provision_shards(shards);
                let msgs = rig.seal_round();
                let (_, peaks, rt) =
                    rig.sharded_streaming_pass(&msgs, AggregatorKind::Advanced, CHUNK, rt);
                let limit = rig.epc_limit();
                let tel = olive_telemetry::Telemetry::from_env();
                for (i, &peak) in peaks.iter().enumerate() {
                    tel.bench(
                        "ingestion_ws",
                        &[
                            ("config", "sharded_advanced".into()),
                            ("n", (n as u64).into()),
                            ("k", (K as u64).into()),
                            ("d", (D as u64).into()),
                            ("chunk", (CHUNK as u64).into()),
                            ("shards", (shards as u64).into()),
                            ("shard", (i as u64).into()),
                            ("peak_bytes", peak.into()),
                            ("epc_limit", limit.into()),
                            ("would_page", (peak > limit).into()),
                        ],
                        &[],
                    );
                    println!(
                        "ingestion_ws: {{\"config\":\"sharded_advanced\",\"n\":{n},\"k\":{K},\
                         \"d\":{D},\"chunk\":{CHUNK},\"shards\":{shards},\"shard\":{i},\
                         \"peak_bytes\":{peak},\"epc_limit\":{limit},\"would_page\":{}}}",
                        peak > limit,
                    );
                }
                rt
            };
            let rt = RefCell::new(Some(rt));
            group.bench_with_input(
                BenchmarkId::new(&format!("sharded_s{shards}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut rig = rig.borrow_mut();
                        let msgs = rig.seal_round();
                        let live = rt.borrow_mut().take().expect("runtime shuttles between iters");
                        let (delta, _, back) = rig.sharded_streaming_pass(&msgs, kind, CHUNK, live);
                        *rt.borrow_mut() = Some(back);
                        delta
                    })
                },
            );
        }

        // The recovery-cost story, printed once at n = 10k: what the
        // per-chunk stripe checkpoint costs on top of the plain sharded
        // pass, and what one full mid-round shard failover costs on top
        // of that. All three configurations run in the same pass set and
        // the recovered delta is asserted bitwise against the fault-free
        // one, so the line prices *recovery*, not drift.
        if n == 10_000 {
            const REPS: u32 = 3;
            let shards = 4usize;
            let kill_site = "kill@20.2";
            let mut rig = rig.borrow_mut();
            let mut rt = rig.provision_shards(shards);
            let mut reference: Vec<u32> = Vec::new();
            let mut totals = [0u64; 3]; // [sharded, checkpointed, failover]
            for rep in 0..=REPS {
                for (slot, &(ckpt, faulted)) in
                    [(false, false), (true, false), (true, true)].iter().enumerate()
                {
                    let msgs = rig.seal_round();
                    let plan =
                        faulted.then(|| FaultPlan::parse(kill_site).expect("well-formed script"));
                    let (delta, ns, back) =
                        rig.sharded_pass_timed(&msgs, kind, CHUNK, rt, ckpt, plan);
                    rt = back;
                    let bits: Vec<u32> = delta.iter().map(|v| v.to_bits()).collect();
                    if rep == 0 {
                        reference = bits; // warm-up pass: discard the timing
                    } else {
                        totals[slot] += ns;
                        assert_eq!(bits, reference, "recovered delta must match bitwise");
                    }
                }
            }
            let stats = rt.recovery_stats();
            olive_telemetry::Telemetry::from_env().bench(
                "recovery_overhead",
                &[
                    ("n", (n as u64).into()),
                    ("k", (K as u64).into()),
                    ("d", (D as u64).into()),
                    ("chunk", (CHUNK as u64).into()),
                    ("shards", (shards as u64).into()),
                    ("fault", kill_site.into()),
                    ("reps", (REPS as u64).into()),
                    ("relaunches", stats.relaunches.into()),
                    ("sim_backoff_ms", stats.backoff_ms.into()),
                ],
                &[
                    ("sharded_ns", (totals[0] / REPS as u64).into()),
                    ("checkpointed_ns", (totals[1] / REPS as u64).into()),
                    ("failover_ns", (totals[2] / REPS as u64).into()),
                ],
            );
            println!(
                "recovery_overhead: {{\"n\":{n},\"k\":{K},\"d\":{D},\"chunk\":{CHUNK},\
                 \"shards\":{shards},\"fault\":\"{kill_site}\",\"reps\":{REPS},\
                 \"sharded_ns\":{},\"checkpointed_ns\":{},\"failover_ns\":{},\
                 \"relaunches\":{},\"sim_backoff_ms\":{}}}",
                totals[0] / REPS as u64,
                totals[1] / REPS as u64,
                totals[2] / REPS as u64,
                stats.relaunches,
                stats.backoff_ms,
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ingestion);
criterion_main!(benches);
