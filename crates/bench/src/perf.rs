//! Shared driver for the performance figures (9–11) and the DO ablation,
//! plus the `--quick`/`--full` scale policy every experiment binary uses.

use olive_core::aggregation::{aggregate, AggregatorKind};
use olive_core::olive::working_set_bytes;
use olive_fl::SparseGradient;
use olive_memsim::NullTracer;

use crate::synthetic_updates;
use crate::time_once;

/// The three run scales of the experiment binaries (`DESIGN.md` §5),
/// parsed once from the command line. Hoisted here so each binary stops
/// re-implementing the `has_flag("--quick")` + size-table dance.
///
/// * `--quick` — seconds-scale sweep for CI smoke coverage;
/// * default — reduced but shape-preserving scale;
/// * `--full` — the paper's exact dimensions (minutes to hours).
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfMode {
    /// `--quick` was passed (wins over `--full` if both are present).
    pub quick: bool,
    /// `--full` was passed.
    pub full: bool,
}

impl PerfMode {
    /// Parses `--quick` / `--full` from `std::env::args`.
    pub fn from_flags() -> Self {
        let quick = crate::has_flag("--quick");
        let full = crate::has_flag("--full");
        if quick && full {
            eprintln!("both --quick and --full given; --quick takes precedence");
        }
        PerfMode { quick, full }
    }

    /// Selects the size table (or any per-mode slice) for the current
    /// scale: `quick` under `--quick`, `full` under `--full`, else
    /// `default`.
    pub fn table<'a, T>(&self, quick: &'a [T], default: &'a [T], full: &'a [T]) -> &'a [T] {
        if self.quick {
            quick
        } else if self.full {
            full
        } else {
            default
        }
    }

    /// Scalar counterpart of [`PerfMode::table`].
    pub fn pick<T>(&self, quick: T, default: T, full: T) -> T {
        if self.quick {
            quick
        } else if self.full {
            full
        } else {
            default
        }
    }
}

/// Times one aggregation of `n` clients × `k` cells into dimension `d`
/// with the given algorithm (untraced, i.e. the enclave's real compute;
/// the paper's Figure 9 methodology). Returns `(seconds, working-set
/// bytes)`.
pub fn time_aggregation(
    kind: AggregatorKind,
    n: usize,
    k: usize,
    d: usize,
    seed: u64,
) -> (f64, u64) {
    let updates = synthetic_updates(n, k, d, seed);
    let mut sink = 0.0f32;
    let secs = time_once(|| {
        let out = aggregate(kind, &updates, d, &mut NullTracer);
        sink += out[0];
    });
    std::hint::black_box(sink);
    (secs, working_set_bytes(kind, n, k, d))
}

/// Same, but with pre-built updates (amortizes generation across kinds).
pub fn time_aggregation_prebuilt(
    kind: AggregatorKind,
    updates: &[SparseGradient],
    d: usize,
) -> (f64, u64) {
    let n = updates.len();
    let k = updates.first().map(|u| u.k()).unwrap_or(0);
    let mut sink = 0.0f32;
    let secs = time_once(|| {
        let out = aggregate(kind, updates, d, &mut NullTracer);
        sink += out[0];
    });
    std::hint::black_box(sink);
    (secs, working_set_bytes(kind, n, k, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_mode_selects_tables() {
        let quick = PerfMode { quick: true, full: false };
        let deflt = PerfMode::default();
        let full = PerfMode { quick: false, full: true };
        let both = PerfMode { quick: true, full: true };
        let (q, d, f) = (&[1][..], &[1, 2][..], &[1, 2, 3][..]);
        assert_eq!(quick.table(q, d, f), q);
        assert_eq!(deflt.table(q, d, f), d);
        assert_eq!(full.table(q, d, f), f);
        assert_eq!(both.table(q, d, f), q, "--quick wins");
        assert_eq!(deflt.pick(10, 20, 30), 20);
    }

    #[test]
    fn timing_runs_for_every_kind() {
        for kind in [
            AggregatorKind::NonOblivious,
            AggregatorKind::Baseline { cacheline_weights: 16 },
            AggregatorKind::Advanced,
            AggregatorKind::Grouped { h: 4 },
        ] {
            let (t, ws) = time_aggregation(kind, 8, 16, 256, 1);
            assert!(t > 0.0);
            assert!(ws > 0);
        }
    }

    #[test]
    fn advanced_beats_baseline_at_scale() {
        // The Figure 9 headline shape at a miniature size: O((nk+d)log²)
        // vs O(nk·d/16) separates by >10× at d = 64k.
        let d = 65_536;
        let updates = synthetic_updates(64, d / 100, d, 2);
        let (t_base, _) = time_aggregation_prebuilt(
            AggregatorKind::Baseline { cacheline_weights: 16 },
            &updates,
            d,
        );
        let (t_adv, _) = time_aggregation_prebuilt(AggregatorKind::Advanced, &updates, d);
        assert!(
            t_adv < t_base,
            "Advanced ({t_adv:.4}s) should beat Baseline ({t_base:.4}s) at d={d}"
        );
    }
}
