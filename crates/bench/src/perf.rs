//! Shared driver for the performance figures (9–11) and the DO ablation.

use olive_core::aggregation::{aggregate, AggregatorKind};
use olive_core::olive::working_set_bytes;
use olive_fl::SparseGradient;
use olive_memsim::NullTracer;

use crate::synthetic_updates;
use crate::time_once;

/// Times one aggregation of `n` clients × `k` cells into dimension `d`
/// with the given algorithm (untraced, i.e. the enclave's real compute;
/// the paper's Figure 9 methodology). Returns `(seconds, working-set
/// bytes)`.
pub fn time_aggregation(
    kind: AggregatorKind,
    n: usize,
    k: usize,
    d: usize,
    seed: u64,
) -> (f64, u64) {
    let updates = synthetic_updates(n, k, d, seed);
    let mut sink = 0.0f32;
    let secs = time_once(|| {
        let out = aggregate(kind, &updates, d, &mut NullTracer);
        sink += out[0];
    });
    std::hint::black_box(sink);
    (secs, working_set_bytes(kind, n, k, d))
}

/// Same, but with pre-built updates (amortizes generation across kinds).
pub fn time_aggregation_prebuilt(
    kind: AggregatorKind,
    updates: &[SparseGradient],
    d: usize,
) -> (f64, u64) {
    let n = updates.len();
    let k = updates.first().map(|u| u.k()).unwrap_or(0);
    let mut sink = 0.0f32;
    let secs = time_once(|| {
        let out = aggregate(kind, updates, d, &mut NullTracer);
        sink += out[0];
    });
    std::hint::black_box(sink);
    (secs, working_set_bytes(kind, n, k, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_runs_for_every_kind() {
        for kind in [
            AggregatorKind::NonOblivious,
            AggregatorKind::Baseline { cacheline_weights: 16 },
            AggregatorKind::Advanced,
            AggregatorKind::Grouped { h: 4 },
        ] {
            let (t, ws) = time_aggregation(kind, 8, 16, 256, 1);
            assert!(t > 0.0);
            assert!(ws > 0);
        }
    }

    #[test]
    fn advanced_beats_baseline_at_scale() {
        // The Figure 9 headline shape at a miniature size: O((nk+d)log²)
        // vs O(nk·d/16) separates by >10× at d = 64k.
        let d = 65_536;
        let updates = synthetic_updates(64, d / 100, d, 2);
        let (t_base, _) = time_aggregation_prebuilt(
            AggregatorKind::Baseline { cacheline_weights: 16 },
            &updates,
            d,
        );
        let (t_adv, _) = time_aggregation_prebuilt(AggregatorKind::Advanced, &updates, d);
        assert!(
            t_adv < t_base,
            "Advanced ({t_adv:.4}s) should beat Baseline ({t_base:.4}s) at d={d}"
        );
    }
}
