//! Figures 15 & 16: the utility cost of defending with DP noise instead
//! of obliviousness — test accuracy (Fig. 15) and per-round test loss
//! (Fig. 16) for increasing σ.
//!
//! Expected shape: accuracy collapses for the σ ≥ 4 that Figure 14 showed
//! would be needed to blunt the attack; training stops converging at
//! large σ. Conclusion (Appendix D.3): DP cannot substitute for Olive's
//! oblivious aggregation.

use olive_bench::attack_exp::{utility_run, Scale, Workload};
use olive_bench::has_flag;
use olive_bench::table::{pct, print_table};

/// Per-round `(test_loss, test_accuracy, epsilon)` series from [`utility_run`].
type LossSeries = Vec<(f32, f32, f64)>;

fn main() {
    let scale = Scale::from_flags();
    let quick = has_flag("--quick");
    let sigmas: &[f64] = if quick { &[0.0, 4.0] } else { &[0.0, 0.5, 1.12, 2.0, 4.0, 8.0] };
    let rounds = if quick { 8 } else { 24 };

    let mut acc_rows = Vec::new();
    let mut loss_tables: Vec<(f64, LossSeries)> = Vec::new();
    for &sigma in sigmas {
        let series = utility_run(Workload::MnistMlp, sigma, 0.1, rounds, &scale, 1500);
        let (final_loss, final_acc, eps) = *series.last().unwrap();
        acc_rows.push(vec![
            format!("{sigma:.2}"),
            pct(final_acc as f64),
            format!("{final_loss:.3}"),
            if sigma > 0.0 { format!("{eps:.2}") } else { "-".into() },
        ]);
        loss_tables.push((sigma, series));
        eprintln!("sigma {sigma} done");
    }
    print_table(
        &format!("Figure 15 (MNIST MLP): utility after {rounds} rounds vs sigma"),
        &["sigma", "test accuracy", "test loss", "epsilon (delta=1e-5)"],
        &acc_rows,
    );

    println!("\n=== Figure 16: test-loss trajectories ===");
    for (sigma, series) in &loss_tables {
        let losses: Vec<String> = series
            .iter()
            .enumerate()
            .filter(|(i, _)| i % (rounds / 8).max(1) == 0)
            .map(|(i, (l, _, _))| format!("r{i}:{l:.2}"))
            .collect();
        println!("  sigma={sigma:<5} {}", losses.join("  "));
    }
    println!("\nShape claims: accuracy degrades monotonically with sigma; at the sigma that\nwould blunt the attack (>4), the model no longer trains.");
}
