//! Figures 12 & 13: the Figure 4/5 attacks repeated under DP
//! (Algorithm 6, σ = 1.12).
//!
//! Expected shape: success rates barely change — the attacker observes
//! the raw index pattern *before* the enclave adds noise, so model-level
//! DP does not defend the side channel. This is the motivating result
//! for Olive in CDP-FL (Appendix D.3).

use olive_attack::AttackMethod;
use olive_bench::attack_exp::{run_experiment, AttackExperiment, Scale, Workload};
use olive_bench::has_flag;
use olive_bench::table::{pct, print_table};
use olive_data::LabelAssignment;
use olive_memsim::Granularity;

fn main() {
    let scale = Scale::from_flags();
    let quick = has_flag("--quick");
    let sigma = 1.12;
    let workloads: Vec<Workload> = if quick {
        vec![Workload::MnistMlp]
    } else {
        vec![Workload::MnistMlp, Workload::Purchase100Mlp]
    };
    for workload in &workloads {
        let mut rows = Vec::new();
        for (setting, labels) in [
            ("fixed-1", LabelAssignment::Fixed(1)),
            ("fixed-2", LabelAssignment::Fixed(2)),
            ("random-2", LabelAssignment::Random(2)),
        ] {
            for dp in [None, Some(sigma)] {
                let exp = AttackExperiment {
                    workload: *workload,
                    labels,
                    alpha: 0.1,
                    method: AttackMethod::Jaccard,
                    granularity: Granularity::Element,
                    dp_sigma: dp,
                    seed: 1213,
                };
                let (all, top1) = run_experiment(&exp, &scale);
                rows.push(vec![
                    setting.to_string(),
                    dp.map(|s| format!("sigma={s}")).unwrap_or_else(|| "no DP".into()),
                    pct(all),
                    pct(top1),
                ]);
                eprintln!("{} / {setting} / dp={dp:?} done", workload.name());
            }
        }
        print_table(
            &format!("Figures 12-13 ({}): attack with vs without DP", workload.name()),
            &["label setting", "DP", "all", "top-1"],
            &rows,
        );
    }
    println!("\nShape claim: with sigma = 1.12 the attack is essentially unaffected.");
}
