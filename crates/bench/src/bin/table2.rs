//! Table 2: DP-FL schemes — trust model and utility.
//!
//! Static rows reproduce the paper's comparison; the measured column runs
//! the same workload under central noise (CDP ≡ Olive: noise added once,
//! inside the enclave) vs local noise (LDP: every client perturbs its own
//! update), with the same per-mechanism σ. The LDP accuracy collapse is
//! the utility gap Olive closes without trusting the server.
//!
//! Flags: `--quick` (fewer training rounds), `--paper-scale`.

use olive_bench::attack_exp::{Scale, Workload};
use olive_bench::perf::PerfMode;
use olive_bench::table::{pct, print_table};
use olive_core::aggregation::AggregatorKind;
use olive_data::synthetic::Generator;
use olive_data::{partition, LabelAssignment};
use olive_fl::ldp::ldp_perturb_sparse;
use olive_fl::{local_update, sample_clients, ClientConfig, FedAvgServer, Sparsifier};
use olive_memsim::NullTracer;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs reduced-scale FL with either central (enclave) or local (client)
/// Gaussian noise; returns final test accuracy.
fn run_fl(central: bool, sigma: f64, scale: &Scale, rounds: usize, seed: u64) -> f64 {
    let workload = Workload::MnistMlp;
    let gen = Generator::new(
        olive_data::synthetic::SyntheticConfig {
            feature_dim: 28 * 28,
            num_classes: 10,
            active_fraction: 0.15,
            noise_std: 0.25,
            binary: false,
        },
        seed,
    );
    let clients =
        partition(&gen, scale.n_clients, LabelAssignment::Fixed(2), scale.samples_per_client, seed);
    let model = workload.build_model(false, seed);
    let d = model.param_count();
    let k = d / 10;
    let clip = 1.0f32;
    let cfg = ClientConfig {
        epochs: scale.epochs,
        batch_size: scale.batch,
        lr: scale.lr,
        sparsifier: Sparsifier::TopK(k),
        clip: Some(clip),
    };
    let mut server = FedAvgServer::new(model, scale.server_lr);
    let mut scratch = server.model.clone();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7AB2E);
    for round in 0..rounds as u64 {
        let sampled = sample_clients(scale.n_clients, scale.sample_rate, &mut rng);
        let params = server.params();
        let mut updates: Vec<_> = sampled
            .iter()
            .map(|&u| {
                let mut sg = local_update(
                    &mut scratch,
                    &params,
                    &clients[u as usize].dataset,
                    &cfg,
                    seed ^ (round << 16) ^ u as u64,
                );
                if !central && sigma > 0.0 {
                    // LDP: each client noises its own k values.
                    ldp_perturb_sparse(&mut sg, clip, sigma, &mut rng);
                }
                sg
            })
            .collect();
        let mut agg = olive_core::aggregation::aggregate(
            AggregatorKind::Advanced,
            &updates,
            d,
            &mut NullTracer,
        );
        if central && sigma > 0.0 {
            // CDP/Olive: one Gaussian draw on the aggregate, inside the
            // enclave, scaled by 1/n like the sum it protects.
            let mech = olive_dp::GaussianMechanism::new(sigma / updates.len() as f64, clip);
            mech.perturb(&mut agg, &mut rng);
        }
        server.apply_aggregate(&agg);
        updates.clear();
    }
    let mut test_rng = SmallRng::seed_from_u64(seed ^ 0x7E57);
    let test = gen.sample_balanced(scale.pool_per_label, &mut test_rng);
    let (_, acc) = server.model.evaluate(&test.features, &test.labels, 64);
    acc as f64
}

fn main() {
    let scale = Scale::from_flags();
    let mode = PerfMode::from_flags();
    // --quick keeps all three trust-model runs but trains fewer rounds
    // (the CDP-vs-LDP gap is visible after a handful).
    let rounds = mode.pick(4, 12, 12);
    let sigma = 1.12;
    eprintln!("running no-noise baseline…");
    let acc_clean = run_fl(true, 0.0, &scale, rounds, 21);
    eprintln!("running CDP/Olive…");
    let acc_cdp = run_fl(true, sigma, &scale, rounds, 21);
    eprintln!("running LDP…");
    let acc_ldp = run_fl(false, sigma, &scale, rounds, 21);

    let rows = vec![
        vec!["CDP-FL".into(), "Trusted server".into(), "Good".into(), pct(acc_cdp)],
        vec!["LDP-FL".into(), "Untrusted server".into(), "Limited".into(), pct(acc_ldp)],
        vec![
            "Shuffle DP-FL".into(),
            "Untrusted server + shuffler".into(),
            "<= CDP-FL".into(),
            "(between)".into(),
        ],
        vec![
            "Olive (ours)".into(),
            "Untrusted server with TEE".into(),
            "= CDP-FL".into(),
            pct(acc_cdp),
        ],
    ];
    print_table(
        &format!(
            "Table 2: DP-FL schemes (measured at sigma={sigma}, no-noise acc={})",
            pct(acc_clean)
        ),
        &["Scheme", "Trust model", "Utility (paper)", "Utility (measured)"],
        &rows,
    );
    println!("\nShape claim: Olive = CDP utility without a trusted server; LDP pays the\nsqrt(n)-vs-n noise gap ({} vs {}).", pct(acc_ldp), pct(acc_cdp));
}
