//! Section 5.4 ablation: differentially-oblivious aggregation vs full
//! obliviousness.
//!
//! Measures the DO aggregator's padding volume and wall time against
//! Advanced for growing d, verifying the paper's argument that the
//! per-index shifted-Laplace padding (∝ k·d·ln(1/δ)/ε) makes DO *slower*
//! than fully oblivious aggregation in the FL regime.

use olive_bench::perf::{time_aggregation_prebuilt, PerfMode};
use olive_bench::synthetic_updates;
use olive_bench::table::{print_table, secs};
use olive_core::aggregation::dobliv::expected_padding;
use olive_core::aggregation::AggregatorKind;

fn main() {
    let mode = PerfMode::from_flags();
    let all = &[1_000, 10_000, 50_000];
    let sizes = mode.table(&[1_000, 10_000], all, all);
    let n = 50;
    let (eps, delta) = (1.0, 1e-5);
    let mut rows = Vec::new();
    for &d in sizes {
        let k = (d / 100).max(1);
        let updates = synthetic_updates(n, k, d, 3);
        let (t_adv, _) = time_aggregation_prebuilt(AggregatorKind::Advanced, &updates, d);
        let (t_do, _) = time_aggregation_prebuilt(
            AggregatorKind::DiffOblivious { epsilon: eps, delta, seed: 9 },
            &updates,
            d,
        );
        let pad = expected_padding(d, k, eps, delta);
        rows.push(vec![
            d.to_string(),
            (n * k).to_string(),
            format!("{:.0}", pad),
            format!("{:.1}x", pad / (n * k) as f64),
            secs(t_adv),
            secs(t_do),
        ]);
        eprintln!("d = {d} done");
    }
    print_table(
        &format!("Section 5.4 ablation: DO(eps={eps}, delta={delta}) vs Advanced (n={n})"),
        &["d", "real cells nk", "expected dummy cells", "padding blowup", "Advanced", "DO"],
        &rows,
    );
    println!("\nShape claim: DO's padding dwarfs the real workload as d grows, so the\nrelaxation loses to full obliviousness in FL (Section 5.4's conclusion).");
}
