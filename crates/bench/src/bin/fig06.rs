//! Figure 6: attack success vs sparse ratio α (2 labels per client).
//!
//! Expected shape: the *smaller* α (sparser gradients), the more
//! label-distinctive the surviving indices and the more successful the
//! attack — the paper's headline CIFAR100 result (≈ 1.0 success at
//! α = 0.3%).

use olive_attack::AttackMethod;
use olive_bench::attack_exp::{run_experiment, AttackExperiment, Scale, Workload};
use olive_bench::has_flag;
use olive_bench::table::{pct, print_table};
use olive_data::LabelAssignment;
use olive_memsim::Granularity;

fn main() {
    let scale = Scale::from_flags();
    let quick = has_flag("--quick");
    let workloads: Vec<Workload> = if quick {
        vec![Workload::MnistMlp]
    } else {
        vec![Workload::MnistMlp, Workload::Cifar100Cnn]
    };
    let alphas: &[f64] = if quick { &[0.01, 0.1] } else { &[0.003, 0.01, 0.03, 0.1, 0.3] };
    for workload in &workloads {
        let mut rows = Vec::new();
        for &alpha in alphas {
            let exp = AttackExperiment {
                workload: *workload,
                labels: LabelAssignment::Fixed(2),
                alpha,
                method: AttackMethod::Jaccard,
                granularity: Granularity::Element,
                dp_sigma: None,
                seed: 6000 + (alpha * 1000.0) as u64,
            };
            let (all, top1) = run_experiment(&exp, &scale);
            rows.push(vec![format!("{:.1}%", alpha * 100.0), pct(all), pct(top1)]);
            eprintln!("{} / alpha {alpha} done", workload.name());
        }
        print_table(
            &format!("Figure 6 ({}): success vs sparse ratio, 2 labels, Jac", workload.name()),
            &["alpha", "all", "top-1"],
            &rows,
        );
    }
    println!("\nShape claim: success rate is inversely related to alpha (sparser = leakier).");
}
