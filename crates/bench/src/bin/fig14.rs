//! Figure 14: attack success vs noise multiplier σ (MNIST MLP, 3 fixed
//! labels), with the oblivious-defense floor (random guessing,
//! 1/C(10,3) < 0.01) for reference.
//!
//! Expected shape: flat near the no-noise level across realistic σ;
//! defense only at absurd σ (> 4), which Figure 15 shows destroys
//! utility. The oblivious algorithms reach the floor at zero utility
//! cost.

use olive_attack::metrics::random_guess_all;
use olive_attack::AttackMethod;
use olive_bench::attack_exp::{run_experiment, AttackExperiment, Scale, Workload};
use olive_bench::has_flag;
use olive_bench::table::{pct, print_table};
use olive_data::LabelAssignment;
use olive_memsim::Granularity;

fn main() {
    let scale = Scale::from_flags();
    let quick = has_flag("--quick");
    let sigmas: &[f64] = if quick { &[0.0, 1.12] } else { &[0.0, 0.5, 1.12, 2.0, 4.0, 8.0] };
    let mut rows = Vec::new();
    for &sigma in sigmas {
        let exp = AttackExperiment {
            workload: Workload::MnistMlp,
            labels: LabelAssignment::Fixed(3),
            alpha: 0.1,
            method: AttackMethod::Jaccard,
            granularity: Granularity::Element,
            dp_sigma: if sigma > 0.0 { Some(sigma) } else { None },
            seed: 1400,
        };
        let (all, top1) = run_experiment(&exp, &scale);
        rows.push(vec![format!("{sigma:.2}"), pct(all), pct(top1)]);
        eprintln!("sigma {sigma} done");
    }
    print_table(
        "Figure 14 (MNIST MLP, 3 labels): attack success vs noise multiplier",
        &["sigma", "all", "top-1"],
        &rows,
    );
    println!(
        "\nOblivious-defense floor (random guess of 3 of 10 labels): all = {}",
        olive_bench::table::pct(random_guess_all(10, 3))
    );
    println!("Shape claim: realistic noise does not protect the index side channel.");
}
