//! Figure 5: attack success with a *random* number of labels per client
//! (the attacker does not know the set size and uses 2-means clustering —
//! the harder setting).
//!
//! Expected shape: lower `all` than Figure 4, but still far above chance
//! for small maxima; `top-1` barely affected.

use olive_attack::AttackMethod;
use olive_bench::attack_exp::{run_experiment, AttackExperiment, Scale, Workload};
use olive_bench::has_flag;
use olive_bench::table::{pct, print_table};
use olive_data::LabelAssignment;
use olive_memsim::Granularity;

fn main() {
    let scale = Scale::from_flags();
    let quick = has_flag("--quick");
    let workloads: Vec<Workload> = if quick {
        vec![Workload::MnistMlp]
    } else {
        vec![Workload::MnistMlp, Workload::Cifar10Cnn, Workload::Purchase100Mlp]
    };
    let methods: &[(&str, AttackMethod)] = if quick {
        &[("Jac", AttackMethod::Jaccard)]
    } else {
        &[
            ("Jac", AttackMethod::Jaccard),
            ("NN", AttackMethod::Nn(olive_attack::NnParams::default())),
        ]
    };
    let maxima: &[usize] = if quick { &[2] } else { &[2, 3, 4] };
    for workload in &workloads {
        let mut rows = Vec::new();
        for &(mname, method) in methods {
            for &max in maxima {
                let exp = AttackExperiment {
                    workload: *workload,
                    labels: LabelAssignment::Random(max),
                    alpha: 0.1,
                    method,
                    granularity: Granularity::Element,
                    dp_sigma: None,
                    seed: 4242 + max as u64,
                };
                let (all, top1) = run_experiment(&exp, &scale);
                rows.push(vec![mname.to_string(), max.to_string(), pct(all), pct(top1)]);
                eprintln!("{} / {mname} / max {max} done", workload.name());
            }
        }
        print_table(
            &format!("Figure 5 ({}): random label count (unknown to attacker)", workload.name()),
            &["method", "max #labels", "all", "top-1"],
            &rows,
        );
    }
    println!("\nShape claims: harder than Figure 4 (no size hint), yet small label counts\nremain attackable; top-1 stays high.");
}
