//! Figure 9: aggregation time vs model size d (synthetic workload).
//!
//! Paper setting: α = 0.01, n = 100 clients/round, d from 10⁴ to 10⁶.
//! Methods: Non-Oblivious (linear), Baseline (Alg. 3, c = 16), Advanced
//! (Alg. 4), PathORAM (ZeroTrace model, recursive position map).
//!
//! Expected shape (paper): Advanced ≈ one order of magnitude faster than
//! Baseline and >10× faster than PathORAM; Baseline wins only at very
//! small d; Advanced stays at seconds even at d = 10⁶.
//!
//! Flags: `--quick` caps d at 10⁵; `--full` runs the slow methods at every
//! size (hours); default caps Baseline at 3·10⁵ and PathORAM at 10⁵
//! (raised from 3·10⁴ once the batched eviction kernel and the fused
//! recursive position map landed — a d = 10⁵ round is now minutes, not
//! tens of minutes).

use olive_bench::perf::{time_aggregation_prebuilt, PerfMode};
use olive_bench::synthetic_updates;
use olive_bench::table::{print_table, secs};
use olive_core::aggregation::AggregatorKind;
use olive_oram::PosMapKind;

fn main() {
    let mode = PerfMode::from_flags();
    let alpha = 0.01;
    let n = 100;
    let all = &[10_000, 30_000, 100_000, 300_000, 1_000_000];
    let sizes = mode.table(&[10_000, 30_000, 100_000], all, all);
    let mut rows = Vec::new();
    for &d in sizes {
        let k = ((d as f64) * alpha) as usize;
        let updates = synthetic_updates(n, k, d, 42);
        let (t_lin, _) = time_aggregation_prebuilt(AggregatorKind::NonOblivious, &updates, d);
        let t_base = if mode.full || d <= 300_000 {
            Some(
                time_aggregation_prebuilt(
                    AggregatorKind::Baseline { cacheline_weights: 16 },
                    &updates,
                    d,
                )
                .0,
            )
        } else {
            None
        };
        let (t_adv, _) = time_aggregation_prebuilt(AggregatorKind::Advanced, &updates, d);
        let t_oram = if mode.full || d <= 100_000 {
            Some(
                time_aggregation_prebuilt(
                    AggregatorKind::PathOram { posmap: PosMapKind::Recursive },
                    &updates,
                    d,
                )
                .0,
            )
        } else {
            None
        };
        let opt = |t: Option<f64>| t.map(secs).unwrap_or_else(|| "(skipped)".into());
        rows.push(vec![
            d.to_string(),
            k.to_string(),
            secs(t_lin),
            opt(t_base),
            secs(t_adv),
            opt(t_oram),
        ]);
        eprintln!("d = {d} done");
    }
    print_table(
        "Figure 9: aggregation time vs model size (alpha=0.01, n=100)",
        &["d", "k", "Non-Oblivious", "Baseline(c=16)", "Advanced", "PathORAM"],
        &rows,
    );
    println!(
        "\nShape claims to check: Advanced ≲ seconds at d = 1e6; Baseline ≥ ~10x Advanced at\n\
         large d; PathORAM ≥ ~10x Advanced everywhere; Non-Oblivious fastest but leaky."
    );
}
