//! Figures 2 & 3: dense gradients induce uniform access patterns; sparse
//! gradients induce biased (index-revealing) patterns.
//!
//! Prints the first accesses of the linear algorithm on dense vs sparse
//! inputs, and verifies Definition 2.1 digests: identical across dense
//! inputs, divergent across sparse inputs.
//!
//! Already seconds-scale; `--quick` trims the printed access prefix.

use olive_bench::perf::PerfMode;
use olive_core::aggregation::linear::{aggregate_dense_linear, aggregate_sparse_linear};
use olive_core::cell::make_cell;
use olive_core::regions::{REGION_G, REGION_G_STAR};
use olive_memsim::{Granularity, RecordingTracer};

fn show(events: &[olive_memsim::Access], limit: usize) {
    for a in events.iter().take(limit) {
        let region = match a.region {
            REGION_G => "G ",
            REGION_G_STAR => "G*",
            _ => "? ",
        };
        println!("  ({region}[{:>3}], {:?})", a.offset, a.op);
    }
}

fn main() {
    let mode = PerfMode::from_flags();
    let shown = mode.pick(6, 12, 12);
    println!("=== Figure 2: dense gradients → uniform access pattern ===");
    let dense = vec![0.5f32; 2 * 4]; // 2 users, d = 4
    let mut tr = RecordingTracer::with_events(Granularity::Element);
    aggregate_dense_linear(&dense, 4, 2, &mut tr);
    show(tr.events().unwrap(), shown);
    let d1 = tr.digest();
    let mut tr2 = RecordingTracer::with_events(Granularity::Element);
    aggregate_dense_linear(&[-9.0f32; 8], 4, 2, &mut tr2);
    println!(
        "  digest(input A) == digest(input B): {}  (Proposition 3.1: oblivious)",
        d1 == tr2.digest()
    );

    println!("\n=== Figure 3: sparse gradients → biased, index-revealing pattern ===");
    let sparse_a = [make_cell(0, 0.5), make_cell(3, 0.5), make_cell(3, 0.5), make_cell(1, 0.5)];
    let mut tr = RecordingTracer::with_events(Granularity::Element);
    aggregate_sparse_linear(&sparse_a, 4, 2, &mut tr);
    show(tr.events().unwrap(), shown);
    let da = tr.digest();
    let sparse_b = [make_cell(2, 0.5), make_cell(1, 0.5), make_cell(0, 0.5), make_cell(2, 0.5)];
    let mut tr = RecordingTracer::with_events(Granularity::Element);
    aggregate_sparse_linear(&sparse_b, 4, 2, &mut tr);
    println!(
        "  digest(input A) == digest(input B): {}  (Proposition 3.2: NOT oblivious — the\n\
         \x20 G* offsets above are exactly the users' secret top-k indices)",
        da == tr.digest()
    );
}
