//! Figure 8: how much labelled test data does the attacker need?
//!
//! Shrinks the attacker's per-label pool (MNIST fixed-2-labels;
//! Purchase100 random-labels) and re-runs the attack.
//!
//! Expected shape: success barely degrades down to a handful of samples
//! per label (the paper: 10 samples/label ≈ full-pool performance on
//! MNIST), weakening the attacker-knowledge assumption.

use olive_attack::AttackMethod;
use olive_bench::attack_exp::{
    run_experiment_with_pool_override, AttackExperiment, Scale, Workload,
};
use olive_bench::has_flag;
use olive_bench::table::{pct, print_table};
use olive_data::LabelAssignment;
use olive_memsim::Granularity;

fn main() {
    let scale = Scale::from_flags();
    let quick = has_flag("--quick");
    let pools: &[usize] = if quick { &[4, 24] } else { &[2, 4, 8, 16, 24] };
    let cases: &[(&str, Workload, LabelAssignment)] = if quick {
        &[("MNIST fixed-2", Workload::MnistMlp, LabelAssignment::Fixed(2))]
    } else {
        &[
            ("MNIST fixed-2", Workload::MnistMlp, LabelAssignment::Fixed(2)),
            ("Purchase100 random-2", Workload::Purchase100Mlp, LabelAssignment::Random(2)),
        ]
    };
    for &(name, workload, labels) in cases {
        let mut rows = Vec::new();
        for &per_label in pools {
            let exp = AttackExperiment {
                workload,
                labels,
                alpha: 0.1,
                method: AttackMethod::Jaccard,
                granularity: Granularity::Element,
                dp_sigma: None,
                seed: 8000,
            };
            let (all, top1) = run_experiment_with_pool_override(&exp, &scale, Some(per_label));
            rows.push(vec![per_label.to_string(), pct(all), pct(top1)]);
            eprintln!("{name} / {per_label} samples/label done");
        }
        print_table(
            &format!("Figure 8 ({name}): attacker pool size vs success (Jac)"),
            &["samples/label", "all", "top-1"],
            &rows,
        );
    }
    println!("\nShape claim: performance is preserved down to very small attacker datasets.");
}
