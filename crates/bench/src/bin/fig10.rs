//! Figure 10: aggregation time vs number of clients per round at low
//! sparsity (α = 0.1, MNIST MLP d = 50,890).
//!
//! Expected shape (paper): Advanced degrades with many clients because the
//! sort vector outgrows the cache hierarchy (and, on SGX, the EPC —
//! 5089·8·3000 + 50890·8 ≈ 122 MB > 96 MB), to the point where Baseline
//! competes; the Figure 11 grouping fixes it.
//!
//! Scales: `--quick` n ∈ {10, 100} with Baseline only at n = 10; default
//! n ∈ {10, 100, 1000} with Baseline capped at n ≤ 100 (O(nkd)); `--full`
//! adds n = 3000, matching the paper's N = 10⁴ round, and uncaps Baseline.

use olive_bench::perf::{time_aggregation_prebuilt, PerfMode};
use olive_bench::synthetic_updates;
use olive_bench::table::{print_table, secs};
use olive_core::aggregation::AggregatorKind;
use olive_core::olive::working_set_bytes;

fn main() {
    let mode = PerfMode::from_flags();
    let d = 50_890;
    let k = 5_089; // α = 0.1
    let ns = mode.table(&[10, 100], &[10, 100, 1000], &[10, 100, 1000, 3000]);
    let baseline_cap = mode.pick(10, 100, usize::MAX);
    let mut rows = Vec::new();
    for &n in ns {
        let updates = synthetic_updates(n, k, d, 7);
        let (t_lin, _) = time_aggregation_prebuilt(AggregatorKind::NonOblivious, &updates, d);
        let t_base = if n <= baseline_cap {
            Some(
                time_aggregation_prebuilt(
                    AggregatorKind::Baseline { cacheline_weights: 16 },
                    &updates,
                    d,
                )
                .0,
            )
        } else {
            None
        };
        let (t_adv, ws) = time_aggregation_prebuilt(AggregatorKind::Advanced, &updates, d);
        rows.push(vec![
            n.to_string(),
            secs(t_lin),
            t_base.map(secs).unwrap_or_else(|| "(skipped)".into()),
            secs(t_adv),
            format!("{:.0} MB", ws as f64 / (1 << 20) as f64),
            if ws > 96 << 20 { "yes".into() } else { "no".into() },
        ]);
        eprintln!("n = {n} done");
    }
    print_table(
        "Figure 10: time vs clients per round (alpha=0.1, d=50890 MNIST-MLP)",
        &["n", "Non-Oblivious", "Baseline(c=16)", "Advanced", "sort working set", "exceeds EPC"],
        &rows,
    );
    println!(
        "\nPaper's 122 MB check at n=3000: working_set = {:.0} MB",
        working_set_bytes(AggregatorKind::Advanced, 3000, k, d) as f64 / (1 << 20) as f64
    );
    println!(
        "Shape claims: Advanced time grows super-linearly once the sort vector exceeds L3/EPC;\n\
         Baseline closes the gap at large n·k with small d. Fix: Figure 11 grouping."
    );
}
