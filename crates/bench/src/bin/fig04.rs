//! Figure 4: attack success vs number of labels per client (fixed,
//! attacker knows the count). Datasets × methods {Jac, NN, NN-single},
//! metrics {all, top-1}; (N, q, T, α) = (1000, 0.1, 3, 0.1) at paper
//! scale.
//!
//! Expected shape: near-perfect success at 1–2 labels, `all` decaying
//! with more labels while `top-1` stays high; 100-label datasets are
//! harder; all three methods comparable (index information is simple).
//!
//! Flags: `--quick` (one dataset/method), `--all-datasets`,
//! `--paper-scale`.

use olive_attack::AttackMethod;
use olive_bench::attack_exp::{run_experiment, AttackExperiment, Scale, Workload};
use olive_bench::has_flag;
use olive_bench::table::{pct, print_table};
use olive_data::LabelAssignment;
use olive_memsim::Granularity;

fn main() {
    let scale = Scale::from_flags();
    let quick = has_flag("--quick");
    let workloads: Vec<Workload> = if quick {
        vec![Workload::MnistMlp]
    } else if has_flag("--all-datasets") {
        Workload::all().to_vec()
    } else {
        vec![Workload::MnistMlp, Workload::Cifar10Cnn, Workload::Purchase100Mlp]
    };
    let methods: &[(&str, AttackMethod)] = if quick {
        &[("Jac", AttackMethod::Jaccard)]
    } else {
        &[
            ("Jac", AttackMethod::Jaccard),
            ("NN", AttackMethod::Nn(olive_attack::NnParams::default())),
            ("NN-single", AttackMethod::NnSingle(olive_attack::NnParams::default())),
        ]
    };
    let label_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3] };

    for workload in &workloads {
        let mut rows = Vec::new();
        for &(mname, method) in methods {
            for &labels in label_counts {
                let exp = AttackExperiment {
                    workload: *workload,
                    labels: LabelAssignment::Fixed(labels),
                    alpha: 0.1,
                    method,
                    granularity: Granularity::Element,
                    dp_sigma: None,
                    seed: 42 + labels as u64,
                };
                let (all, top1) = run_experiment(&exp, &scale);
                rows.push(vec![mname.to_string(), labels.to_string(), pct(all), pct(top1)]);
                eprintln!("{} / {mname} / {labels} labels done", workload.name());
            }
        }
        print_table(
            &format!("Figure 4 ({}): fixed label count, alpha=0.1", workload.name()),
            &["method", "#labels", "all", "top-1"],
            &rows,
        );
    }
    println!("\nShape claims: high success at few labels; `all` decays with label count;\n`top-1` stays high; methods comparable.");
}
