//! Figure 7: cacheline-granularity observation (64 B = 16 f32 weights),
//! CIFAR10 CNN — the practically observable SGX channel.
//!
//! Expected shape: accuracies close to the element-granularity attack;
//! NN slightly better, Jac slightly worse. The well-known SGX cacheline
//! channel is sufficient.

use olive_attack::AttackMethod;
use olive_bench::attack_exp::{run_experiment, AttackExperiment, Scale, Workload};
use olive_bench::has_flag;
use olive_bench::table::{pct, print_table};
use olive_data::LabelAssignment;
use olive_memsim::Granularity;

fn main() {
    let scale = Scale::from_flags();
    let quick = has_flag("--quick");
    let methods: &[(&str, AttackMethod)] = if quick {
        &[("Jac", AttackMethod::Jaccard)]
    } else {
        &[
            ("Jac", AttackMethod::Jaccard),
            ("NN", AttackMethod::Nn(olive_attack::NnParams::default())),
        ]
    };
    let mut rows = Vec::new();
    for &(mname, method) in methods {
        for labels in [1usize, 2] {
            for (gname, gran) in
                [("element", Granularity::Element), ("cacheline 64B", Granularity::Cacheline)]
            {
                let exp = AttackExperiment {
                    workload: Workload::Cifar10Cnn,
                    labels: LabelAssignment::Fixed(labels),
                    alpha: 0.1,
                    method,
                    granularity: gran,
                    dp_sigma: None,
                    seed: 7000 + labels as u64,
                };
                let (all, top1) = run_experiment(&exp, &scale);
                rows.push(vec![
                    mname.to_string(),
                    labels.to_string(),
                    gname.to_string(),
                    pct(all),
                    pct(top1),
                ]);
                eprintln!("{mname} / {labels} labels / {gname} done");
            }
        }
    }
    print_table(
        "Figure 7 (CIFAR10 CNN): element vs cacheline observation granularity",
        &["method", "#labels", "granularity", "all", "top-1"],
        &rows,
    );
    println!("\nShape claim: cacheline-level observation loses little accuracy — the attack\nsurvives the realistic SGX channel.");
}
