//! CI bench-regression gate: compares an `OLIVE_BENCH_JSON` results file
//! against a committed baseline and fails (exit 1) when any allowlisted
//! stable bench regresses by more than the threshold (default 30%).
//!
//! ```text
//! bench_gate --baseline crates/bench/baselines/pr7-bench.json \
//!            --current bench-results.json [--threshold 30]
//! ```
//!
//! The file format is the vendored criterion shim's flat JSON object —
//! `{"group/name/param": mean_ns, …}`, one entry per line — parsed here
//! with the same line-based rules the shim uses to merge, so the two
//! round-trip exactly (no serde in the tree).
//!
//! Only benches matching [`STABLE_PREFIXES`] gate the build: those are
//! arithmetic-bound kernels whose mean is reproducible on shared CI
//! runners. Everything else (ingestion rounds, ORAM, checkpoint I/O —
//! allocator- and scheduler-noisy at the 20 ms smoke budget) is shown in
//! the delta table for the record but never fails the job. An allowlisted
//! bench present in the baseline but *missing* from the current run also
//! fails: silently dropping a bench must not read as a pass.
//!
//! The table goes to stdout and, when `$GITHUB_STEP_SUMMARY` is set, is
//! appended there as GitHub-flavored markdown.
//!
//! `--quick` runs the built-in self-test (the experiments-quick CI job
//! sweeps every bin in this crate with `--quick`): it checks the parser
//! and the gate verdicts on synthetic data and exits 0.

use std::fmt::Write as _;
use std::process::ExitCode;

/// Benches stable enough to gate on: small, arithmetic-bound kernels with
/// no allocator churn. Prefix match against the `group/name/param` key.
/// Reviewed for PR 8: `round_ingestion/sharded_*` stays informational
/// (transport-plane timings are allocator-noisy at the smoke budget),
/// and the `recovery_overhead:` report is a println side channel — it
/// never enters the criterion JSON, so it is never gated.
/// Reviewed for PR 10: the `path_oram_access/*` entries (including the
/// fast-path recursive ones) and `aggregation_vs_model_size/path_oram/*`
/// stay informational — even batched, an ORAM access is pointer-chasing
/// over a tree plus RNG, not arithmetic-bound, and its smoke-budget mean
/// jitters well past the 30% threshold on shared runners. The speedup
/// story is pinned by the committed `pr10-bench.json` snapshot instead.
const STABLE_PREFIXES: &[&str] = &["aes_gcm/", "hmac/", "sha256/", "sort/", "sort_kernel/"];

/// Default allowed regression, percent.
const DEFAULT_THRESHOLD: f64 = 30.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--quick") {
        return self_test();
    }
    let mut baseline_path = None;
    let mut current_path = None;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_path = it.next().cloned(),
            "--current" => current_path = it.next().cloned(),
            "--threshold" => {
                threshold =
                    it.next().and_then(|v| v.parse().ok()).expect("--threshold takes a percentage")
            }
            other => {
                eprintln!("bench_gate: unknown argument {other}");
                eprintln!(
                    "usage: bench_gate --baseline <json> --current <json> [--threshold <pct>]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        eprintln!("usage: bench_gate --baseline <json> --current <json> [--threshold <pct>]");
        return ExitCode::FAILURE;
    };
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => parse_flat_json(&s),
        Err(e) => {
            eprintln!("bench_gate: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let current = match std::fs::read_to_string(&current_path) {
        Ok(s) => parse_flat_json(&s),
        Err(e) => {
            eprintln!("bench_gate: cannot read current {current_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = compare(&baseline, &current, threshold);
    print!("{}", report.table);
    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        if !summary.is_empty() {
            use std::io::Write;
            match std::fs::OpenOptions::new().create(true).append(true).open(&summary) {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", report.markdown);
                }
                Err(e) => eprintln!("bench_gate: cannot append to {summary}: {e}"),
            }
        }
    }
    if report.failures.is_empty() {
        println!("bench_gate: OK — {} gated benches within {threshold}% of baseline", report.gated);
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            eprintln!("bench_gate: FAIL — {f}");
        }
        ExitCode::FAILURE
    }
}

/// Parses the criterion shim's flat `{"name": ns, …}` object with the
/// shim's own line-based rules (one entry per line, exactly one quote
/// stripped per side, escaped quotes/backslashes unescaped).
fn parse_flat_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some((name, value)) = line.rsplit_once(':') {
            let name = name.trim();
            let name = name.strip_prefix('"').unwrap_or(name);
            let name = name.strip_suffix('"').unwrap_or(name);
            if let Ok(ns) = value.trim().parse::<f64>() {
                if !name.is_empty() {
                    out.push((name.replace("\\\"", "\"").replace("\\\\", "\\"), ns));
                }
            }
        }
    }
    out
}

fn is_gated(name: &str) -> bool {
    STABLE_PREFIXES.iter().any(|p| name.starts_with(p))
}

struct Report {
    table: String,
    markdown: String,
    failures: Vec<String>,
    gated: usize,
}

fn compare(baseline: &[(String, f64)], current: &[(String, f64)], threshold: f64) -> Report {
    let mut table = String::new();
    let mut md = String::from("### Bench regression gate\n\n");
    let _ = writeln!(
        table,
        "{:<52} {:>12} {:>12} {:>8}  verdict",
        "bench", "baseline ns", "current ns", "delta"
    );
    md.push_str("| bench | baseline ns | current ns | delta | verdict |\n");
    md.push_str("|---|---:|---:|---:|---|\n");
    let mut failures = Vec::new();
    let mut gated = 0usize;
    for (name, base) in baseline {
        let cur = current.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        let gate = is_gated(name);
        let (delta_s, verdict) = match cur {
            Some(cur) => {
                let delta = (cur - base) / base * 100.0;
                let verdict = if !gate {
                    "info"
                } else if delta > threshold {
                    failures.push(format!(
                        "{name}: {base:.0} ns → {cur:.0} ns (+{delta:.1}% > {threshold}%)"
                    ));
                    "REGRESSION"
                } else {
                    gated += 1;
                    "ok"
                };
                (format!("{delta:+.1}%", delta = delta), verdict)
            }
            None if gate => {
                failures.push(format!("{name}: present in baseline, missing from current run"));
                ("—".to_string(), "MISSING")
            }
            None => ("—".to_string(), "info"),
        };
        let cur_s = cur.map_or("—".to_string(), |c| format!("{c:.1}"));
        let _ = writeln!(table, "{name:<52} {base:>12.1} {cur_s:>12} {delta_s:>8}  {verdict}");
        let _ = writeln!(md, "| `{name}` | {base:.1} | {cur_s} | {delta_s} | {verdict} |");
    }
    for (name, cur) in current {
        if !baseline.iter().any(|(n, _)| n == name) {
            let _ = writeln!(table, "{name:<52} {:>12} {cur:>12.1} {:>8}  new", "—", "—");
            let _ = writeln!(md, "| `{name}` | — | {cur:.1} | — | new |");
        }
    }
    let _ = writeln!(
        md,
        "\n{} gated benches, {} regression(s), threshold {threshold}%.",
        gated + failures.len(),
        failures.len()
    );
    Report { table, markdown: md, failures, gated }
}

/// `--quick` self-test: parser round-trip + gate verdicts on synthetic
/// results. Exits non-zero on any mismatch, so the experiments-quick CI
/// sweep genuinely exercises the gate logic.
fn self_test() -> ExitCode {
    let baseline = r#"{
  "aes_gcm/seal/4096": 1000.0,
  "oram/read/1024": 500.0,
  "sha256/escaped\"name": 10.0,
  "hmac/gone_missing/1": 7.0
}
"#;
    let current = r#"{
  "aes_gcm/seal/4096": 2000.0,
  "oram/read/1024": 5000.0,
  "sha256/escaped\"name": 10.5,
  "sort/bitonic/256": 99.0
}
"#;
    let base = parse_flat_json(baseline);
    let cur = parse_flat_json(current);
    assert_eq!(base.len(), 4, "parser must read every baseline entry");
    assert!(base.iter().any(|(n, _)| n == "sha256/escaped\"name"), "escaped quotes must unescape");
    let report = compare(&base, &cur, DEFAULT_THRESHOLD);
    // The 2x AES slowdown and the missing gated bench must fail; the
    // 10x ORAM slowdown must not (not allowlisted); +5% must pass.
    assert_eq!(report.failures.len(), 2, "gate verdicts: {:?}", report.failures);
    assert!(report.failures[0].contains("aes_gcm"), "2x slowdown on a gated bench fails");
    assert!(report.failures[1].contains("gone_missing"), "missing gated bench fails");
    assert_eq!(report.gated, 1, "the +5% gated bench passes");
    assert!(report.table.contains("sort/bitonic/256"), "new benches are listed");
    let clean = compare(&base, &base, DEFAULT_THRESHOLD);
    assert!(clean.failures.is_empty(), "identical results must pass");
    println!("bench_gate --quick: self-test passed (parser + verdicts)");
    ExitCode::SUCCESS
}
