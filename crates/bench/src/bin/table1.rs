//! Table 1: datasets and global models.
//!
//! Prints the paper's Table 1 with this reproduction's actual parameter
//! counts (synthetic dataset record counts are the paper's, since the
//! generators are unbounded samplers).
//!
//! The table is static and already sub-second; `--quick` is accepted for
//! CI-sweep uniformity and runs the identical table.

use olive_bench::perf::PerfMode;
use olive_bench::table::print_table;
use olive_data::DatasetKind;
use olive_nn::zoo::ModelSpec;

fn main() {
    let _mode = PerfMode::from_flags();
    let rows: Vec<Vec<String>> = ModelSpec::all()
        .iter()
        .map(|m| {
            let ds = match m {
                ModelSpec::MnistMlp => DatasetKind::Mnist,
                ModelSpec::Cifar10Mlp | ModelSpec::Cifar10Cnn => DatasetKind::Cifar10,
                ModelSpec::Purchase100Mlp => DatasetKind::Purchase100,
                ModelSpec::Cifar100Cnn => DatasetKind::Cifar100,
            }
            .spec();
            let params = m.build(0).param_count();
            vec![
                ds.name.to_string(),
                m.name().to_string(),
                params.to_string(),
                ds.num_classes.to_string(),
                format!("{} ({})", ds.paper_records, ds.paper_test_records),
            ]
        })
        .collect();
    print_table(
        "Table 1: datasets and global models",
        &["Dataset", "Model", "#Params", "#Label", "#Record (Test)"],
        &rows,
    );
    println!(
        "\nPaper reference params: MNIST MLP 50890, CIFAR10 MLP 197320, CIFAR10 CNN 62006,\n\
         Purchase100 MLP 44964, CIFAR100 CNN 201588 (ResNet-18; ours is a small-CNN stand-in)."
    );
}
