//! Figure 11: the grouping optimization's U-curve over group size h.
//!
//! Left panel: MNIST MLP (d = 50,890) at α = 0.1, the Figure 10 worst
//! case. Right panel: CIFAR100-scale MLP (d ≈ 204k) at α = 0.01.
//! Expected shape: very small h pays repeated per-group d-overhead; very
//! large h thrashes the cache (8 MB L3) and, on SGX, the EPC; the optimum
//! sits where one group's sort vector ≈ cache size (paper: h ≈ 100–150).
//!
//! Also replays a scaled-down trace through the cache/EPC cost simulator
//! to show the same U-curve under the paper's hardware constants
//! (`--no-sim` to skip). `--quick` shrinks n and the h grid to seconds
//! scale; `--full` uses the paper's n = 3000.

use olive_bench::perf::{time_aggregation_prebuilt, PerfMode};
use olive_bench::table::{print_table, secs};
use olive_bench::{has_flag, synthetic_updates};
use olive_core::aggregation::{aggregate_with_threads, AggregatorKind};
use olive_memsim::{CacheConfig, RecordingTracer, SgxCostEstimate};

fn panel(name: &str, d: usize, k: usize, n: usize, hs: &[usize]) {
    let updates = synthetic_updates(n, k, d, 11);
    let mut rows = Vec::new();
    let (t_adv, ws) = time_aggregation_prebuilt(AggregatorKind::Advanced, &updates, d);
    rows.push(vec![
        format!("ungrouped (h={n})"),
        secs(t_adv),
        format!("{:.0} MB", ws as f64 / (1 << 20) as f64),
    ]);
    for &h in hs {
        let (t, ws) = time_aggregation_prebuilt(AggregatorKind::Grouped { h }, &updates, d);
        rows.push(vec![
            format!("h={h}"),
            secs(t),
            format!("{:.0} MB", ws as f64 / (1 << 20) as f64),
        ]);
        eprintln!("{name}: h = {h} done");
    }
    print_table(
        &format!("Figure 11 ({name}): grouped Advanced vs group size h (n={n}, d={d}, k={k})"),
        &["group size", "time", "per-group working set"],
        &rows,
    );
}

/// Trace-driven cache/EPC cost model at reduced scale: shows the same
/// U-curve under the paper's 8 MB L3 / 96 MB EPC constants, independent
/// of this machine's cache hierarchy. The geometry is scaled down 64×
/// (128 KiB cache, 1.5 MB EPC) to keep trace replay fast.
fn simulated_panel(d: usize, k: usize, n: usize, hs: &[usize]) {
    let updates = synthetic_updates(n, k, d, 13);
    let mut rows = Vec::new();
    for &h in hs {
        // Record the trace, then replay it through the cost model.
        let mut est = SgxCostEstimate::new(
            CacheConfig { size_bytes: 128 << 10, ways: 16, line_bytes: 64 },
            3 << 19, // 1.5 MB scaled EPC
            olive_memsim::CostModel::default(),
        );
        let mut replay = RecordingTracer::with_events(olive_memsim::Granularity::Cacheline)
            .with_event_cap(200_000_000);
        // Pin one worker so the recorded event order (hence the simulated
        // cache/EPC numbers) stays machine-independent.
        aggregate_with_threads(AggregatorKind::Grouped { h }, &updates, d, 1, &mut replay);
        for a in replay.events().unwrap() {
            est.access(a.region, a.offset * 64);
        }
        rows.push(vec![
            format!("h={h}"),
            format!("{:.2} ms (simulated)", est.estimated_ns() / 1e6),
            format!("{:.1}% cache miss", est.cache_stats().miss_rate() * 100.0),
            format!("{} EPC faults", est.epc_stats().faults),
        ]);
    }
    print_table(
        &format!("Figure 11 (cost-model replay, scaled 64x): n={n}, d={d}, k={k}"),
        &["group size", "simulated memory time", "L3 miss rate", "EPC faults"],
        &rows,
    );
}

fn main() {
    let mode = PerfMode::from_flags();
    let n = mode.pick(128, 1000, 3000);
    // Left: MNIST MLP, α = 0.1.
    let mnist_hs = mode.table(
        &[16, 64, 128],
        &[10, 25, 50, 100, 200, 500, 1000],
        &[10, 25, 50, 100, 200, 500, 1000],
    );
    panel("MNIST MLP", 50_890, 5_089, n, mnist_hs);
    // Right: CIFAR100-scale MLP, α = 0.01.
    let cifar_hs =
        mode.table(&[32, 128], &[25, 50, 100, 150, 300, 600], &[25, 50, 100, 150, 300, 600]);
    panel("CIFAR100 MLP", 204_000, 2_040, n, cifar_hs);
    if !has_flag("--no-sim") {
        if mode.quick {
            simulated_panel(3_200, 32, 64, &[2, 8, 32]);
        } else {
            simulated_panel(12_800, 128, 256, &[2, 8, 32, 128, 256]);
        }
    }
    println!(
        "\nShape claim: time falls from tiny h, reaches a minimum near the h whose per-group\n\
         sort vector ≈ cache size, then rises again as sorting outgrows L3/EPC (paper: 290s →\n\
         ~10s at h≈100 for MNIST; 16s → 5.7s at h≈150 for CIFAR100)."
    );
}
