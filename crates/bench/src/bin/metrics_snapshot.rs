//! Deterministic telemetry snapshot: one chaos round, projected.
//!
//! Runs the pinned CI chaos deployment — the canonical 16-client
//! federation under `Grouped {h: 3}`, chunk 3, one thread, four shards,
//! the scripted fault plan `seed:1337x5@6.4` — with telemetry armed into
//! an in-memory buffer, and prints the **deterministic projection** of
//! the stream (every record minus its wall-clock suffix) to stdout.
//!
//! The projection is a pure function of the computation: span ids and
//! nesting, chunk/shard/fault sites, byte counters, recovery attempts.
//! CI diffs this output against the committed golden file
//! (`crates/bench/golden/metrics_snapshot.jsonl`), so any change to the
//! telemetry schema or to what the round *does* shows up as a reviewable
//! snapshot diff — and silent nondeterminism in the metrics plane fails
//! the build.
//!
//! Every knob that could vary by host is pinned in-process: the crypto
//! backend (`OLIVE_CRYPTO=ct` — counter keys embed the backend name),
//! threads, chunk size, shard count, fault script, and the sink (buffer,
//! ignoring any ambient `OLIVE_METRICS`). `--quick` is accepted for the
//! experiments sweep and changes nothing: the snapshot is already one
//! small round.

use olive_core::aggregation::AggregatorKind;
use olive_core::olive::{OliveConfig, OliveSystem};
use olive_data::synthetic::{Generator, SyntheticConfig};
use olive_data::{partition, LabelAssignment};
use olive_fl::{ClientConfig, Sparsifier};
use olive_memsim::{FaultPlan, NullTracer};
use olive_nn::zoo::mlp;
use olive_telemetry::{deterministic_projection, Telemetry};

/// Data seed of the snapshot federation (matches the integration-test
/// fixture so the round shape is the one the chaos suite already pins).
const FIXTURE_SEED: u64 = 7;

fn main() {
    // Pin the host-dependent knobs before anything reads them. The
    // backend name is embedded in counter keys ("sealed_bytes"/"ct"),
    // so hardware AES detection must not steer it.
    std::env::set_var("OLIVE_CRYPTO", "ct");
    std::env::remove_var("OLIVE_METRICS");
    std::env::remove_var("OLIVE_FAULTS");

    let generator = Generator::new(SyntheticConfig::tiny(32, 5), FIXTURE_SEED);
    let clients = partition(&generator, 16, LabelAssignment::Fixed(1), 20, FIXTURE_SEED);
    let model = mlp(32, 12, 5, 0.0, FIXTURE_SEED);
    let d = model.param_count();
    let cfg = OliveConfig {
        n_clients: clients.len(),
        sample_rate: 0.6,
        client: ClientConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.25,
            sparsifier: Sparsifier::TopK(d / 16),
            clip: None,
        },
        aggregator: AggregatorKind::Grouped { h: 3 },
        server_lr: 0.8,
        dp: None,
        seed: 97,
    };
    let mut sys = OliveSystem::new(model, clients, cfg);
    sys.set_threads(1);
    sys.set_chunk(3);
    sys.set_shards(4);
    sys.set_fault_plan(
        FaultPlan::parse("seed:1337x5@6.4").expect("the CI spec must stay parseable"),
    );

    let tel = Telemetry::to_buffer();
    sys.set_telemetry(tel.clone());

    // Round 1 rides the chaos script; round 2 is fault-free and pins the
    // flush boundary (counters cleared between rounds, span ids running).
    for _ in 0..2 {
        sys.run_round(&mut NullTracer).expect("the scripted faults must all recover");
    }

    let stream = tel.buffer_contents().expect("buffer sink");
    print!("{}", deterministic_projection(&stream));
}
