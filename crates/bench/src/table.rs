//! Plain-text table rendering for the experiment binaries.

/// Prints a header + aligned rows (all pre-formatted strings).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats seconds adaptively.
pub fn secs(t: f64) -> String {
    if t < 1e-3 {
        format!("{:.1}µs", t * 1e6)
    } else if t < 1.0 {
        format!("{:.1}ms", t * 1e3)
    } else {
        format!("{t:.2}s")
    }
}
