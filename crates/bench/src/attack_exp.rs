//! Shared driver for the attack experiments (Figures 4–8, 12–16).
//!
//! The paper's scale is (N, q, T) = (1000, 0.1, 3) with 45k–200k-parameter
//! models on the real datasets. The default scale here is reduced (fewer
//! clients, narrower hidden layers, synthetic data — `DESIGN.md` §1/§5)
//! but preserves every *shape*: non-IID label skew, top-k sparsification,
//! the (α, #labels, dataset-size, granularity, σ) sweeps, and the three
//! scoring methods. `--paper-scale` restores N = 1000, q = 0.1.

use olive_attack::{run_attack, AttackMethod, AttackPipelineConfig, NnParams};
use olive_core::aggregation::AggregatorKind;
use olive_core::olive::{DpConfig, OliveConfig, OliveSystem};
use olive_data::synthetic::{Dataset, Generator, SyntheticConfig};
use olive_data::{partition, LabelAssignment};
use olive_fl::{ClientConfig, Sparsifier};
use olive_memsim::Granularity;
use olive_nn::layers::{Conv2d, Dense, Layer, MaxPool2d, Relu};
use olive_nn::zoo::mlp;
use olive_nn::Model;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The five evaluation workloads (dataset × model, Table 1 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// MNIST-like + MLP.
    MnistMlp,
    /// CIFAR10-like + MLP.
    Cifar10Mlp,
    /// CIFAR10-like + CNN.
    Cifar10Cnn,
    /// Purchase100-like + MLP.
    Purchase100Mlp,
    /// CIFAR100-like + CNN.
    Cifar100Cnn,
}

impl Workload {
    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::MnistMlp => "MNIST (MLP)",
            Workload::Cifar10Mlp => "CIFAR10 (MLP)",
            Workload::Cifar10Cnn => "CIFAR10 (CNN)",
            Workload::Purchase100Mlp => "Purchase100 (MLP)",
            Workload::Cifar100Cnn => "CIFAR100 (CNN)",
        }
    }

    /// Number of labels |L|.
    pub fn num_classes(&self) -> usize {
        match self {
            Workload::MnistMlp | Workload::Cifar10Mlp | Workload::Cifar10Cnn => 10,
            Workload::Purchase100Mlp | Workload::Cifar100Cnn => 100,
        }
    }

    /// All five workloads in Figure 4 order.
    pub fn all() -> [Workload; 5] {
        [
            Workload::MnistMlp,
            Workload::Cifar10Mlp,
            Workload::Cifar10Cnn,
            Workload::Purchase100Mlp,
            Workload::Cifar100Cnn,
        ]
    }

    fn synthetic_config(&self, paper_scale: bool) -> SyntheticConfig {
        if paper_scale {
            match self {
                Workload::MnistMlp => SyntheticConfig::mnist_like(),
                Workload::Cifar10Mlp | Workload::Cifar10Cnn => SyntheticConfig::cifar10_like(),
                Workload::Purchase100Mlp => SyntheticConfig::purchase100_like(),
                Workload::Cifar100Cnn => SyntheticConfig::cifar100_like(),
            }
        } else {
            // Reduced feature spaces; CNN workloads use 16×16×3 images.
            match self {
                Workload::MnistMlp => SyntheticConfig {
                    feature_dim: 28 * 28,
                    num_classes: 10,
                    active_fraction: 0.15,
                    noise_std: 0.25,
                    binary: false,
                },
                Workload::Cifar10Mlp => SyntheticConfig {
                    feature_dim: 3 * 16 * 16,
                    num_classes: 10,
                    active_fraction: 0.10,
                    noise_std: 0.40,
                    binary: false,
                },
                Workload::Cifar10Cnn => SyntheticConfig {
                    feature_dim: 3 * 16 * 16,
                    num_classes: 10,
                    active_fraction: 0.10,
                    noise_std: 0.40,
                    binary: false,
                },
                Workload::Purchase100Mlp => SyntheticConfig {
                    feature_dim: 600,
                    num_classes: 100,
                    active_fraction: 0.2,
                    noise_std: 0.0,
                    binary: true,
                },
                Workload::Cifar100Cnn => SyntheticConfig {
                    feature_dim: 3 * 16 * 16,
                    num_classes: 100,
                    active_fraction: 0.08,
                    noise_std: 0.40,
                    binary: false,
                },
            }
        }
    }

    /// Builds the (possibly reduced) global model.
    pub fn build_model(&self, paper_scale: bool, seed: u64) -> Model {
        if paper_scale {
            match self {
                Workload::MnistMlp => olive_nn::zoo::mnist_mlp(seed),
                Workload::Cifar10Mlp => olive_nn::zoo::cifar10_mlp(seed),
                Workload::Cifar10Cnn => olive_nn::zoo::cifar10_cnn(seed),
                Workload::Purchase100Mlp => olive_nn::zoo::purchase100_mlp(seed),
                Workload::Cifar100Cnn => olive_nn::zoo::cifar100_cnn(seed),
            }
        } else {
            match self {
                Workload::MnistMlp => mlp(28 * 28, 32, 10, 0.0, seed),
                Workload::Cifar10Mlp => mlp(3 * 16 * 16, 24, 10, 0.0, seed),
                Workload::Cifar10Cnn => reduced_cnn(10, seed),
                Workload::Purchase100Mlp => mlp(600, 16, 100, 0.0, seed),
                Workload::Cifar100Cnn => reduced_cnn(100, seed),
            }
        }
    }
}

/// LeNet-in-miniature for 16×16×3 synthetic images.
fn reduced_cnn(classes: usize, seed: u64) -> Model {
    let mut rng = SmallRng::seed_from_u64(seed);
    Model::new(
        vec![
            Layer::Conv2d(Conv2d::new(3, 4, 5, 16, 16, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(4, 12, 12)),
            Layer::Dense(Dense::new(4 * 6 * 6, 32, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(32, classes, &mut rng)),
        ],
        classes,
    )
}

/// Experiment scale knobs.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Total clients N.
    pub n_clients: usize,
    /// Sampling rate q.
    pub sample_rate: f64,
    /// Observed rounds T.
    pub rounds: usize,
    /// Training samples per client.
    pub samples_per_client: usize,
    /// Attacker pool size per label.
    pub pool_per_label: usize,
    /// Local epochs.
    pub epochs: usize,
    /// Local batch size.
    pub batch: usize,
    /// Client learning rate.
    pub lr: f32,
    /// Server learning rate.
    pub server_lr: f32,
    /// Attacker NN hyperparameters.
    pub nn: NnParams,
    /// Use paper-dimension models/datasets.
    pub paper: bool,
}

impl Scale {
    /// The default reduced scale (seconds per run).
    pub fn reduced() -> Self {
        Scale {
            n_clients: 40,
            sample_rate: 0.5,
            rounds: 3,
            samples_per_client: 48,
            pool_per_label: 24,
            epochs: 2,
            batch: 12,
            lr: 0.2,
            server_lr: 1.0,
            nn: NnParams { hidden: 64, epochs: 80, lr: 0.3 },
            paper: false,
        }
    }

    /// The paper's (N, q, T) = (1000, 0.1, 3).
    pub fn paper() -> Self {
        Scale {
            n_clients: 1000,
            sample_rate: 0.1,
            rounds: 3,
            samples_per_client: 60,
            pool_per_label: 100,
            epochs: 2,
            batch: 10,
            lr: 0.1,
            server_lr: 1.0,
            nn: NnParams { hidden: 1000, epochs: 100, lr: 0.1 },
            paper: true,
        }
    }

    /// Reduced or paper scale from the `--paper-scale` flag.
    pub fn from_flags() -> Self {
        if crate::has_flag("--paper-scale") {
            Self::paper()
        } else {
            Self::reduced()
        }
    }
}

/// One attack experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct AttackExperiment {
    /// Dataset × model.
    pub workload: Workload,
    /// Fixed(k) or Random(max) label subsets.
    pub labels: LabelAssignment,
    /// Top-k sparsity ratio α (k = α·d).
    pub alpha: f64,
    /// Scoring method.
    pub method: AttackMethod,
    /// Side-channel granularity.
    pub granularity: Granularity,
    /// DP mode (Figures 12–14): Algorithm 6 with this σ.
    pub dp_sigma: Option<f64>,
    /// Seed.
    pub seed: u64,
}

/// Builds the Olive system + attacker pool for an experiment.
pub fn build_system(exp: &AttackExperiment, scale: &Scale) -> (OliveSystem, Dataset) {
    let gen = Generator::new(exp.workload.synthetic_config(scale.paper), exp.seed ^ 0xDA7A);
    let clients =
        partition(&gen, scale.n_clients, exp.labels, scale.samples_per_client, exp.seed ^ 0x9A27);
    let model = exp.workload.build_model(scale.paper, exp.seed ^ 0x40DE1);
    let d = model.param_count();
    let k = ((d as f64 * exp.alpha).round() as usize).clamp(1, d);
    let cfg = OliveConfig {
        n_clients: scale.n_clients,
        sample_rate: scale.sample_rate,
        client: ClientConfig {
            epochs: scale.epochs,
            batch_size: scale.batch,
            lr: scale.lr,
            sparsifier: Sparsifier::TopK(k),
            clip: None,
        },
        aggregator: AggregatorKind::NonOblivious,
        server_lr: scale.server_lr,
        dp: exp.dp_sigma.map(|sigma| DpConfig { sigma, clip: 1.0, delta: 1e-5 }),
        seed: exp.seed,
    };
    let sys = OliveSystem::new(model, clients, cfg);
    let mut rng = SmallRng::seed_from_u64(exp.seed ^ 0x9001);
    let pool = gen.sample_balanced(scale.pool_per_label, &mut rng);
    (sys, pool)
}

/// Runs one attack experiment end-to-end and returns `(all, top1)`.
pub fn run_experiment(exp: &AttackExperiment, scale: &Scale) -> (f64, f64) {
    run_experiment_with_pool_override(exp, scale, None)
}

/// Like [`run_experiment`], but optionally shrinking the attacker pool to
/// `per_label` samples (the Figure 8 ablation).
pub fn run_experiment_with_pool_override(
    exp: &AttackExperiment,
    scale: &Scale,
    pool_per_label: Option<usize>,
) -> (f64, f64) {
    let (mut sys, mut pool) = build_system(exp, scale);
    if let Some(per_label) = pool_per_label {
        let mut rng = SmallRng::seed_from_u64(exp.seed ^ 0xF18);
        pool = pool.subsample_per_label(per_label, &mut rng);
    }
    let known = match exp.labels {
        LabelAssignment::Fixed(k) => Some(k),
        LabelAssignment::Random(_) => None,
    };
    let mut method = exp.method;
    if let AttackMethod::Nn(ref mut p) | AttackMethod::NnSingle(ref mut p) = method {
        *p = scale.nn;
    }
    let cfg = AttackPipelineConfig {
        method,
        granularity: exp.granularity,
        known_label_count: known,
        rounds: scale.rounds,
        seed: exp.seed ^ 0xA77AC4,
        event_cap: 64 << 20,
    };
    let outcome = run_attack(&mut sys, &pool, &cfg);
    (outcome.metrics.all, outcome.metrics.top1)
}

/// Runs `rounds` of DP-FL (Algorithm 6) and returns per-round
/// `(test_loss, test_accuracy, epsilon)` — the Figure 15/16 utility runs.
pub fn utility_run(
    workload: Workload,
    sigma: f64,
    alpha: f64,
    rounds: usize,
    scale: &Scale,
    seed: u64,
) -> Vec<(f32, f32, f64)> {
    let exp = AttackExperiment {
        workload,
        labels: LabelAssignment::Fixed(2),
        alpha,
        method: AttackMethod::Jaccard,
        granularity: Granularity::Element,
        dp_sigma: if sigma > 0.0 { Some(sigma) } else { None },
        seed,
    };
    let (mut sys, _pool) = build_system(&exp, scale);
    let gen = Generator::new(workload.synthetic_config(scale.paper), seed ^ 0xDA7A);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7E57);
    let test = gen.sample_balanced(scale.pool_per_label, &mut rng);
    let mut series = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let report =
            sys.run_round(&mut olive_memsim::NullTracer).expect("fault-free bench rounds complete");
        let (loss, acc) = sys.server.model.evaluate(&test.features, &test.labels, 64);
        series.push((loss, acc, report.epsilon_spent.unwrap_or(0.0)));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_metadata() {
        assert_eq!(Workload::MnistMlp.num_classes(), 10);
        assert_eq!(Workload::Cifar100Cnn.num_classes(), 100);
        for w in Workload::all() {
            let m = w.build_model(false, 1);
            assert!(m.param_count() > 0, "{}", w.name());
        }
    }

    #[test]
    fn tiny_experiment_runs() {
        // Smallest viable smoke test of the whole attack path.
        let mut scale = Scale::reduced();
        scale.n_clients = 8;
        scale.samples_per_client = 12;
        scale.pool_per_label = 6;
        scale.rounds = 1;
        let exp = AttackExperiment {
            workload: Workload::Purchase100Mlp,
            labels: LabelAssignment::Fixed(2),
            alpha: 0.05,
            method: AttackMethod::Jaccard,
            granularity: Granularity::Element,
            dp_sigma: None,
            seed: 3,
        };
        let (all, top1) = run_experiment(&exp, &scale);
        assert!((0.0..=1.0).contains(&all));
        assert!((0.0..=1.0).contains(&top1));
    }
}
