//! # olive-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (see `DESIGN.md` §4 for the full index), plus Criterion microbenches.
//!
//! Scale policy (`DESIGN.md` §5): attack experiments default to a reduced
//! but shape-preserving scale and accept `--paper-scale`; performance
//! experiments run at exact paper dimensions but accept `--quick`.

#![forbid(unsafe_code)]

pub mod attack_exp;
pub mod ingest;
pub mod perf;
pub mod table;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Simple flag check over `std::env::args` (`--quick`, `--paper-scale`…).
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Synthetic sparse updates at exact paper dimensions for the performance
/// figures: `n` clients, each with `k` distinct indices drawn uniformly
/// from `d` (the attack-irrelevant workload of Section 5.5 — "the proposed
/// method is fully oblivious and its efficiency depends only on the model
/// size").
pub fn synthetic_updates(n: usize, k: usize, d: usize, seed: u64) -> Vec<olive_fl::SparseGradient> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Sample k distinct indices without materializing 0..d: for
            // k ≪ d rejection sampling is near-linear in k.
            let mut set = std::collections::BTreeSet::new();
            while set.len() < k {
                set.insert(rng.gen_range(0..d as u32));
            }
            let indices: Vec<u32> = set.into_iter().collect();
            let values = (0..indices.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            olive_fl::SparseGradient { dense_dim: d, indices, values }
        })
        .collect()
}

/// Times `f` once and returns seconds (the perf figures each measure a
/// single multi-second aggregation, matching the paper's methodology of
/// timing one round).
pub fn time_once<F: FnOnce()>(f: F) -> f64 {
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_updates_shape() {
        let ups = synthetic_updates(3, 10, 1000, 1);
        assert_eq!(ups.len(), 3);
        for u in &ups {
            assert_eq!(u.k(), 10);
            assert!(u.indices.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn timing_is_positive() {
        let t = time_once(|| {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }
}
