//! Round-ingestion rig: drives the enclave upload path (seal → open →
//! decode → fold) at production client counts without the FL training
//! loop, for the `ingestion` bench and its EPC working-set report.
//!
//! Two pipelines are compared:
//!
//! * **streaming** — the PR-5 round pipeline: uploads are opened in
//!   chunks ([`Enclave::open_upload_batch`]) and folded through the
//!   [`StreamingAggregator`]; the enclave holds O(chunk·k) staged cells;
//! * **materialize-all** — the historical shape: every upload is opened
//!   and decoded into a `Vec<SparseGradient>` (O(n·k) enclave bytes)
//!   before a single one-shot aggregation.
//!
//! Both run with batched or per-message (`serial`) opening, isolating the
//! `open_upload_batch` amortization from the memory story. The aggregator
//! is `NonOblivious` (the O(nk) linear fold) so the timings measure
//! *ingestion* — session lookup, AEAD verification, decode, fold — rather
//! than oblivious-sort cost, which the `aggregation`/`grouping` benches
//! already cover.

use olive_core::aggregation::{
    Aggregator, AggregatorKind, ShardRuntime, ShardedAggregator, StreamingAggregator,
};
use olive_core::olive::{open_and_decode, staged_chunk_bytes};
use olive_fl::SparseGradient;
use olive_memsim::{FaultPlan, NullTracer, StateReader, StateWriter, WorkingSet};
use olive_tee::{AttestationService, ClientSession, Enclave, EnclaveConfig, SealedMessage};
use std::time::Instant;

/// A provisioned enclave + n attested client sessions + fixed payloads.
pub struct IngestionRig {
    service: AttestationService,
    enclave: Enclave,
    seed_bytes: [u8; 32],
    sessions: Vec<ClientSession>,
    users: Vec<u32>,
    payloads: Vec<Vec<u8>>,
    round: u64,
    /// Model dimension.
    pub d: usize,
    /// Transmitted cells per client.
    pub k: usize,
}

impl IngestionRig {
    /// Provisions `n` clients with `k`-sparse uploads over dimension `d`
    /// (the same attestation handshake `OliveSystem::new` performs).
    pub fn new(n: usize, k: usize, d: usize, seed: u64) -> Self {
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&seed.to_be_bytes());
        let service = AttestationService::new(seed_bytes);
        let mut enclave = Enclave::launch(&EnclaveConfig::default(), seed_bytes);
        let quote = enclave.attest(&service, b"olive-ingestion-bench");
        let measurement = enclave.measurement();
        let users: Vec<u32> = (0..n as u32).collect();
        let sessions: Vec<ClientSession> = users
            .iter()
            .map(|&u| {
                let mut cs = seed_bytes;
                cs[24..28].copy_from_slice(&u.to_be_bytes());
                cs[28] ^= 0xC1;
                let session =
                    ClientSession::establish(u, service.public_key(), &measurement, &quote, cs)
                        .expect("attestation must succeed in the rig");
                enclave
                    .register_client(u, session.dh_public())
                    .expect("rig attests before registering");
                session
            })
            .collect();
        let payloads: Vec<Vec<u8>> = crate::synthetic_updates(n, k, d, seed ^ 0xBEEF)
            .iter()
            .map(SparseGradient::encode)
            .collect();
        IngestionRig { service, enclave, seed_bytes, sessions, users, payloads, round: 0, d, k }
    }

    /// Provisions a shard plane of `shards` enclaves around this rig's
    /// coordinator — the same re-attestation + tunnel handshake
    /// `OliveSystem` performs when `OLIVE_SHARDS` > 1. Call once per
    /// topology and reuse across passes (provisioning is handshake cost,
    /// not per-round cost).
    pub fn provision_shards(&mut self, shards: usize) -> ShardRuntime {
        let mut seed = self.seed_bytes;
        seed[23] ^= 0x5A;
        let epc_bytes = self.enclave.epc.limit;
        ShardRuntime::provision(
            &self.service,
            &mut self.enclave,
            b"olive-ingestion-bench",
            seed,
            epc_bytes,
            self.d,
            shards,
        )
        .expect("bench provisioning is fault-free")
    }

    /// Clients provisioned.
    pub fn n(&self) -> usize {
        self.sessions.len()
    }

    /// Starts a fresh round and seals every client's upload (client-side
    /// work, but part of each timed pass: GCM nonces are single-use, so a
    /// new round needs new ciphertexts).
    pub fn seal_round(&mut self) -> Vec<SealedMessage> {
        self.round += 1;
        self.enclave.begin_round(self.round, self.users.clone());
        let round = self.round;
        self.sessions
            .iter_mut()
            .zip(self.payloads.iter())
            .map(|(s, p)| s.seal_upload(round, p))
            .collect()
    }

    /// The enclave's configured EPC limit (bytes).
    pub fn epc_limit(&self) -> u64 {
        self.enclave.epc.limit
    }

    /// Streaming pipeline: open (batched or serial) and fold chunk by
    /// chunk. When `ws` is given, every enclave allocation is charged to
    /// it exactly as `OliveSystem::run_round` charges the EPC budget.
    pub fn streaming_pass(
        &mut self,
        msgs: &[SealedMessage],
        kind: AggregatorKind,
        chunk: usize,
        batch_open: bool,
        mut ws: Option<&mut WorkingSet>,
    ) -> Vec<f32> {
        let mut agg = StreamingAggregator::new(kind, self.d, 1);
        let mut resident = agg.resident_bytes();
        if let Some(ws) = ws.as_deref_mut() {
            ws.alloc(resident);
        }
        for msg_chunk in msgs.chunks(chunk) {
            let staged_bytes = staged_chunk_bytes(msg_chunk);
            let scratch = agg.ingest_scratch_bytes(msg_chunk.len(), self.k);
            if let Some(ws) = ws.as_deref_mut() {
                ws.alloc(staged_bytes + scratch);
            }
            let staged = self.open_chunk(msg_chunk, batch_open);
            agg.ingest(&staged, &mut NullTracer);
            if let Some(ws) = ws.as_deref_mut() {
                ws.free(staged_bytes + scratch);
                let now = agg.resident_bytes();
                ws.resize(resident, now);
                resident = now;
            }
        }
        if let Some(ws) = ws {
            ws.alloc(agg.finalize_scratch_bytes());
        }
        agg.finalize(&mut NullTracer)
    }

    /// Streaming pipeline over a shard plane: chunks are opened by the
    /// coordinator, broadcast through the attested tunnels, and the
    /// finalized delta is striped out to the shards with receipts — the
    /// full `OLIVE_SHARDS` round shape. Returns the delta, each shard's
    /// measured EPC peak, and the runtime (reusable for the next pass).
    pub fn sharded_streaming_pass(
        &mut self,
        msgs: &[SealedMessage],
        kind: AggregatorKind,
        chunk: usize,
        rt: ShardRuntime,
    ) -> (Vec<f32>, Vec<u64>, ShardRuntime) {
        let mut agg = ShardedAggregator::new(kind, self.d, 1, rt);
        for msg_chunk in msgs.chunks(chunk) {
            let staged = self.open_chunk(msg_chunk, true);
            agg.ingest(&staged, &mut NullTracer);
        }
        agg.finalize_with_peaks(&mut NullTracer).expect("bench rounds run without faults")
    }

    /// [`Self::sharded_streaming_pass`] with a wall-clock timer and the
    /// chaos controls the `recovery_overhead:` report sweeps: the
    /// per-chunk stripe checkpoint can be disabled (isolating its cost)
    /// and a [`FaultPlan`] can be armed (measuring a full mid-round shard
    /// failover — kill, relaunch, re-attest, checkpoint restore, resume).
    /// Returns the delta, elapsed nanoseconds, and the runtime.
    pub fn sharded_pass_timed(
        &mut self,
        msgs: &[SealedMessage],
        kind: AggregatorKind,
        chunk: usize,
        mut rt: ShardRuntime,
        checkpointing: bool,
        faults: Option<FaultPlan>,
    ) -> (Vec<f32>, u64, ShardRuntime) {
        rt.set_checkpointing(checkpointing);
        if let Some(plan) = faults {
            rt.set_fault_plan(plan);
        }
        let t0 = Instant::now();
        let mut agg = ShardedAggregator::new(kind, self.d, 1, rt);
        for msg_chunk in msgs.chunks(chunk) {
            let staged = self.open_chunk(msg_chunk, true);
            agg.ingest(&staged, &mut NullTracer);
        }
        let (delta, _peaks, rt) =
            agg.finalize_with_peaks(&mut NullTracer).expect("bench fault scripts stay recoverable");
        (delta, t0.elapsed().as_nanos() as u64, rt)
    }

    /// Materialize-all pipeline: decode the entire round into enclave
    /// memory, then aggregate once (the pre-streaming round shape).
    pub fn materialize_pass(
        &mut self,
        msgs: &[SealedMessage],
        kind: AggregatorKind,
        batch_open: bool,
        mut ws: Option<&mut WorkingSet>,
    ) -> Vec<f32> {
        let staged_bytes = staged_chunk_bytes(msgs);
        let updates = self.open_chunk(msgs, batch_open);
        let mut agg = StreamingAggregator::new(kind, self.d, 1);
        if let Some(ws) = ws.as_deref_mut() {
            ws.alloc(staged_bytes);
            ws.alloc(agg.resident_bytes() + agg.ingest_scratch_bytes(updates.len(), self.k));
        }
        agg.ingest(&updates, &mut NullTracer);
        if let Some(ws) = ws {
            ws.alloc(agg.finalize_scratch_bytes());
        }
        agg.finalize(&mut NullTracer)
    }

    /// Streaming pass with the production round's crash-safe
    /// checkpointing: after every folded chunk the aggregator's
    /// serialized state plus the replay-floor snapshot is sealed under
    /// the `"round-ckpt"` label — the per-chunk overhead
    /// `OliveSystem::run_round` pays by default. Returns the delta and
    /// the newest sealed blob (for the restore bench).
    pub fn streaming_pass_checkpointed(
        &mut self,
        msgs: &[SealedMessage],
        kind: AggregatorKind,
        chunk: usize,
    ) -> (Vec<f32>, Vec<u8>) {
        let (delta, blob, _, _) = self.streaming_pass_checkpointed_timed(msgs, kind, chunk);
        (delta, blob)
    }

    /// [`Self::streaming_pass_checkpointed`] with in-pass phase timers:
    /// also returns `(ingest_ns, ckpt_ns)` — nanoseconds spent on the
    /// round's ingestion work (open + fold + finalize) vs on the
    /// checkpoint machinery (state snapshot + floor snapshot + seal).
    /// Timing both phases inside one pass keeps the overhead ratio
    /// immune to the run-to-run jitter that drowns a few-percent effect
    /// when two separate passes are compared wall-clock to wall-clock.
    pub fn streaming_pass_checkpointed_timed(
        &mut self,
        msgs: &[SealedMessage],
        kind: AggregatorKind,
        chunk: usize,
    ) -> (Vec<f32>, Vec<u8>, u64, u64) {
        let mut agg = StreamingAggregator::new(kind, self.d, 1);
        let mut last = Vec::new();
        let (mut ingest_ns, mut ckpt_ns) = (0u64, 0u64);
        for (i, msg_chunk) in msgs.chunks(chunk).enumerate() {
            let t0 = Instant::now();
            let staged = self.open_chunk(msg_chunk, true);
            agg.ingest(&staged, &mut NullTracer);
            ingest_ns += t0.elapsed().as_nanos() as u64;
            let t0 = Instant::now();
            let mut w = StateWriter::new();
            w.put_u64(self.round);
            w.put_usize(i + 1);
            let floors = self.enclave.replay_floors();
            w.put_usize(floors.len());
            for (u, c) in floors {
                w.put_u32(u);
                w.put_u64(c);
            }
            w.put_bytes(&agg.save_state());
            last = self.enclave.seal(&w.into_bytes(), b"round-ckpt");
            ckpt_ns += t0.elapsed().as_nanos() as u64;
        }
        let t0 = Instant::now();
        let delta = agg.finalize(&mut NullTracer);
        ingest_ns += t0.elapsed().as_nanos() as u64;
        (delta, last, ingest_ns, ckpt_ns)
    }

    /// The restore path's enclave-side work: unseal the blob, rewind the
    /// replay floors, rebuild the aggregator from its serialized state.
    /// Returns the client count the restored aggregator had folded.
    pub fn restore_checkpoint(&mut self, sealed: &[u8], kind: AggregatorKind) -> usize {
        let plain = self.enclave.unseal(sealed, b"round-ckpt").expect("genuine blob");
        let mut r = StateReader::new(&plain);
        let _round = r.get_u64().expect("round counter");
        let _chunks_done = r.get_usize().expect("chunk progress");
        let n = r.get_usize().expect("floor count");
        let mut floors = Vec::with_capacity(n);
        for _ in 0..n {
            floors.push((r.get_u32().expect("user"), r.get_u64().expect("counter")));
        }
        self.enclave.restore_replay_floors(&floors);
        let mut agg = StreamingAggregator::new(kind, self.d, 1);
        agg.load_state(r.get_bytes().expect("aggregator state")).expect("same-config state");
        agg.clients()
    }

    fn open_chunk(&mut self, msgs: &[SealedMessage], batch_open: bool) -> Vec<SparseGradient> {
        if batch_open {
            open_and_decode(&mut self.enclave, msgs)
        } else {
            msgs.iter()
                .map(|m| {
                    let plain = self.enclave.open_upload(m).expect("rig uploads must verify");
                    SparseGradient::decode(&plain).expect("well-formed encoding")
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_and_materialize_agree_and_ws_separates() {
        let mut rig = IngestionRig::new(40, 8, 256, 3);
        let kind = AggregatorKind::NonOblivious;
        let msgs = rig.seal_round();
        let mut ws_stream = WorkingSet::default();
        let a = rig.streaming_pass(&msgs, kind, 4, true, Some(&mut ws_stream));
        let msgs = rig.seal_round();
        let mut ws_mat = WorkingSet::default();
        let b = rig.materialize_pass(&msgs, kind, true, Some(&mut ws_mat));
        assert_eq!(a.len(), 256);
        let same = a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "pipelines must agree bitwise");
        assert!(
            ws_stream.peak < ws_mat.peak,
            "streaming peak {} must undercut materialize-all peak {}",
            ws_stream.peak,
            ws_mat.peak
        );
    }

    #[test]
    fn sharded_pass_matches_monolithic_and_balances() {
        let mut rig = IngestionRig::new(30, 6, 128, 21);
        let kind = AggregatorKind::NonOblivious;
        let msgs = rig.seal_round();
        let reference = rig.streaming_pass(&msgs, kind, 4, true, None);
        let mut rt = rig.provision_shards(4);
        for _ in 0..2 {
            let msgs = rig.seal_round();
            let (delta, peaks, back) = rig.sharded_streaming_pass(&msgs, kind, 4, rt);
            rt = back;
            let same = delta.iter().zip(reference.iter()).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "sharded pass must agree bitwise with the monolithic pass");
            assert_eq!(peaks.len(), 4);
            assert!(peaks.iter().all(|&p| p > 0), "every shard does real work");
            assert!(rt.live().iter().all(|&b| b == 0), "shard budgets balance per pass");
        }
    }

    #[test]
    fn serial_and_batch_open_agree() {
        let mut rig = IngestionRig::new(10, 4, 64, 9);
        let kind = AggregatorKind::NonOblivious;
        let msgs = rig.seal_round();
        let a = rig.streaming_pass(&msgs, kind, 3, true, None);
        let msgs = rig.seal_round();
        let b = rig.streaming_pass(&msgs, kind, 3, false, None);
        let same = a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same);
    }
}
