//! Deterministic fault injection for the sharded round pipeline.
//!
//! The paper's service model assumes the enclave fleet stays up for a
//! whole round; a production coordinator cannot. This module is the
//! simulation's *chaos plane*: a [`FaultPlan`] scripts exactly which
//! transport-layer failures fire at which (chunk, shard) site — shard
//! enclave kill, tunnel frame tamper/drop, stripe-receipt corruption,
//! stale sealed checkpoint served on restore — and the shard runtime
//! consults it at every injection hook. Everything is seeded and
//! replayable: the same plan against the same round produces the same
//! failure sequence, the same recovery actions, and (the hard invariant
//! the tests pin) the same bitwise round output and trace digest as the
//! fault-free round, because recovery lives entirely in the side-band
//! transport plane and never touches canonical compute.
//!
//! Plans come from three places:
//!
//! * [`FaultPlan::from_events`] — explicit scripts in tests;
//! * [`FaultPlan::parse`] — the `OLIVE_FAULTS` grammar (see below);
//! * [`FaultPlan::scripted`] — a seeded xoshiro-driven generator used by
//!   the CI chaos pass (`seed:<u64>x<count>@<chunks>.<shards>`).
//!
//! # `OLIVE_FAULTS` grammar
//!
//! ```text
//! OLIVE_FAULTS="kill@2.0,tamper@5.3,drop@0.1,receipt@e.2,stale@1.0"
//! OLIVE_FAULTS="seed:1337x5@6.4"        # 5 scripted events, chunks<6, shards<4
//! ```
//!
//! Each explicit event is `kind@chunk.shard` with kind one of `kill`,
//! `tamper`, `drop`, `receipt`, `stale`; `chunk` is a 0-based chunk
//! index, or `e`/`egress` for the stripe-egress phase after the last
//! chunk. `receipt` and `stale` events are egress/restore-phase faults,
//! so their chunk is canonicalized to egress. Events at sites the round
//! never reaches (chunk beyond the stream, shard ≥ S) simply never fire.
//!
//! There is no wall clock anywhere: retry backoff is *simulated* — the
//! [`RetryPolicy`] computes a deterministic schedule and the runtime
//! records the would-be sleep in [`RecoveryStats::backoff_ms`] instead
//! of sleeping, so faulted tests run as fast as fault-free ones.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// Chunk index standing for the stripe-egress phase (after the last
/// ingest chunk) in a [`FaultEvent`]. Also matches the restore phase for
/// [`FaultKind::StaleSeal`].
pub const EGRESS_CHUNK: u32 = u32::MAX;

/// The transport-plane failure taxonomy the shard runtime can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The shard enclave dies: all volatile state (tunnel keys, stripe)
    /// is lost and the coordinator must re-provision it mid-round.
    ShardKill,
    /// A tunnel frame is tampered in flight (ciphertext bit flip): the
    /// receiver's AEAD open fails and the sender must retry.
    TunnelTamper,
    /// A tunnel frame is dropped in flight: the receiver never sees it
    /// and the sender must retry (receiver seq floors tolerate the gap).
    TunnelDrop,
    /// The shard's stripe-digest receipt is corrupted in flight.
    ReceiptCorrupt,
    /// A relaunched shard is served its *previous* sealed checkpoint
    /// instead of the newest one — the rollback attack the per-label
    /// monotonic floor must catch as [`StaleSeal`](enum@FaultKind).
    StaleSeal,
}

impl FaultKind {
    fn token(self) -> &'static str {
        match self {
            FaultKind::ShardKill => "kill",
            FaultKind::TunnelTamper => "tamper",
            FaultKind::TunnelDrop => "drop",
            FaultKind::ReceiptCorrupt => "receipt",
            FaultKind::StaleSeal => "stale",
        }
    }
}

/// One scripted failure: `kind` fires when the runtime reaches chunk
/// `chunk` on shard `shard` ([`EGRESS_CHUNK`] = the egress phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What fails.
    pub kind: FaultKind,
    /// 0-based chunk index, or [`EGRESS_CHUNK`] for the egress phase.
    pub chunk: u32,
    /// 0-based shard id.
    pub shard: u32,
}

impl FaultEvent {
    /// Renders this event in the explicit `kind@chunk.shard` grammar —
    /// the fault-site label telemetry records carry, and the per-event
    /// form of [`FaultPlan::render`].
    pub fn render(&self) -> String {
        let chunk =
            if self.chunk == EGRESS_CHUNK { "e".to_string() } else { self.chunk.to_string() };
        format!("{}@{}.{}", self.kind.token(), chunk, self.shard)
    }
}

/// A deterministic script of transport failures, consumed as it fires.
///
/// Each event fires **once**: [`FaultPlan::fire`] removes the first
/// matching event, so a retried operation at the same site succeeds
/// unless the script stacks multiple events there. Stacking
/// `RetryPolicy::MAX_ATTEMPTS` delivery failures at one site exhausts
/// recovery — the structured-error path the exhaustion tests pin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no events (every hook is a no-op).
    pub fn empty() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// A plan from an explicit event list (test scripts).
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Parses the `OLIVE_FAULTS` grammar (module docs). Returns a
    /// message naming the offending token on malformed input.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultPlan::empty());
        }
        if let Some(rest) = spec.strip_prefix("seed:") {
            // seed:<u64>x<count>@<chunks>.<shards>
            let (seed_s, rest) =
                rest.split_once('x').ok_or_else(|| format!("missing 'x<count>' in {spec:?}"))?;
            let (count_s, rest) =
                rest.split_once('@').ok_or_else(|| format!("missing '@<chunks>' in {spec:?}"))?;
            let (chunks_s, shards_s) =
                rest.split_once('.').ok_or_else(|| format!("missing '.<shards>' in {spec:?}"))?;
            let seed: u64 =
                seed_s.parse().map_err(|_| format!("bad seed {seed_s:?} in {spec:?}"))?;
            let count: usize =
                count_s.parse().map_err(|_| format!("bad count {count_s:?} in {spec:?}"))?;
            let chunks: u32 = chunks_s
                .parse()
                .map_err(|_| format!("bad chunk bound {chunks_s:?} in {spec:?}"))?;
            let shards: u32 = shards_s
                .parse()
                .map_err(|_| format!("bad shard bound {shards_s:?} in {spec:?}"))?;
            if chunks == 0 || shards == 0 {
                return Err(format!("chunk/shard bounds must be positive in {spec:?}"));
            }
            return Ok(FaultPlan::scripted(seed, count, chunks, shards));
        }
        let mut events = Vec::new();
        for tok in spec.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            let (kind_s, site) =
                tok.split_once('@').ok_or_else(|| format!("missing '@' in event {tok:?}"))?;
            let kind = match kind_s.trim() {
                "kill" => FaultKind::ShardKill,
                "tamper" => FaultKind::TunnelTamper,
                "drop" => FaultKind::TunnelDrop,
                "receipt" => FaultKind::ReceiptCorrupt,
                "stale" => FaultKind::StaleSeal,
                other => return Err(format!("unknown fault kind {other:?} in {tok:?}")),
            };
            let (chunk_s, shard_s) = site
                .split_once('.')
                .ok_or_else(|| format!("missing '.<shard>' in event {tok:?}"))?;
            let chunk = match chunk_s.trim() {
                "e" | "egress" => EGRESS_CHUNK,
                n => n.parse().map_err(|_| format!("bad chunk {n:?} in event {tok:?}"))?,
            };
            // Receipt corruption and stale-seal are egress/restore-phase
            // faults regardless of the written chunk.
            let chunk = match kind {
                FaultKind::ReceiptCorrupt | FaultKind::StaleSeal => EGRESS_CHUNK,
                _ => chunk,
            };
            let shard: u32 = shard_s
                .trim()
                .parse()
                .map_err(|_| format!("bad shard {shard_s:?} in event {tok:?}"))?;
            events.push(FaultEvent { kind, chunk, shard });
        }
        Ok(FaultPlan { events })
    }

    /// A seeded script of `count` events over chunk indices `< chunks`
    /// and shard ids `< shards`, drawn from the vendored xoshiro
    /// generator. The generator caps stacking per site so every scripted
    /// plan stays *recoverable*: at most 2 delivery failures
    /// (tamper/drop/receipt) per (chunk, shard) — under the
    /// [`RetryPolicy::MAX_ATTEMPTS`] = 4 budget — and at most one kill
    /// and one stale-seal per site.
    pub fn scripted(seed: u64, count: usize, chunks: u32, shards: u32) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events: Vec<FaultEvent> = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while events.len() < count && attempts < count * 32 {
            attempts += 1;
            let kind = match rng.gen_range(0u32..5) {
                0 => FaultKind::ShardKill,
                1 => FaultKind::TunnelTamper,
                2 => FaultKind::TunnelDrop,
                3 => FaultKind::ReceiptCorrupt,
                _ => FaultKind::StaleSeal,
            };
            let chunk = match kind {
                FaultKind::ReceiptCorrupt | FaultKind::StaleSeal => EGRESS_CHUNK,
                _ => {
                    if rng.gen_bool(0.15) {
                        EGRESS_CHUNK
                    } else {
                        rng.gen_range(0..chunks)
                    }
                }
            };
            let shard = rng.gen_range(0..shards);
            let delivery = matches!(
                kind,
                FaultKind::TunnelTamper | FaultKind::TunnelDrop | FaultKind::ReceiptCorrupt
            );
            let at_site = |e: &&FaultEvent| e.chunk == chunk && e.shard == shard;
            let site_delivery = events
                .iter()
                .filter(at_site)
                .filter(|e| {
                    matches!(
                        e.kind,
                        FaultKind::TunnelTamper | FaultKind::TunnelDrop | FaultKind::ReceiptCorrupt
                    )
                })
                .count();
            let site_same_kind = events.iter().filter(at_site).filter(|e| e.kind == kind).count();
            let ok = if delivery { site_delivery < 2 } else { site_same_kind < 1 };
            if ok {
                events.push(FaultEvent { kind, chunk, shard });
            }
        }
        FaultPlan { events }
    }

    /// The plan scripted by the `OLIVE_FAULTS` environment variable, or
    /// empty when unset. Parsed once per process; a malformed spec
    /// prints one warning to stderr and behaves as unset, matching the
    /// other `OLIVE_*` knobs.
    pub fn from_env() -> Self {
        static PLAN: OnceLock<FaultPlan> = OnceLock::new();
        PLAN.get_or_init(|| match std::env::var("OLIVE_FAULTS") {
            Ok(spec) => match FaultPlan::parse(&spec) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("OLIVE_FAULTS ignored ({e})");
                    FaultPlan::empty()
                }
            },
            Err(_) => FaultPlan::empty(),
        })
        .clone()
    }

    /// Injection hook: does a `kind` fault fire at (`chunk`, `shard`)?
    /// Consumes the first matching event, so a retry of the same
    /// operation succeeds unless the script stacked another event there.
    pub fn fire(&mut self, kind: FaultKind, chunk: u32, shard: u32) -> bool {
        if let Some(i) =
            self.events.iter().position(|e| e.kind == kind && e.chunk == chunk && e.shard == shard)
        {
            self.events.remove(i);
            true
        } else {
            false
        }
    }

    /// Events not yet fired.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }

    /// True when no events remain (or the plan was always empty).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events, in firing-priority order (for diagnostics).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Renders the plan back in the explicit `OLIVE_FAULTS` grammar.
    pub fn render(&self) -> String {
        self.events.iter().map(FaultEvent::render).collect::<Vec<_>>().join(",")
    }
}

/// Bounded-retry schedule for faulted shard operations. The backoff is
/// exponential with a cap, and **simulated**: the runtime adds
/// [`RetryPolicy::backoff_ms`] to [`RecoveryStats::backoff_ms`] instead
/// of sleeping, keeping rounds deterministic and tests fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per operation before recovery is declared exhausted.
    pub max_attempts: u32,
    /// Backoff before the second attempt (simulated milliseconds).
    pub base_ms: u64,
    /// Backoff ceiling (simulated milliseconds).
    pub cap_ms: u64,
}

impl RetryPolicy {
    /// The default attempt budget (see [`RetryPolicy::default`]).
    pub const MAX_ATTEMPTS: u32 = 4;

    /// Simulated backoff before attempt `attempt` (1-based; attempt 1
    /// has no backoff): `min(base · 2^(attempt-2), cap)`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        if attempt <= 1 {
            return 0;
        }
        let shift = (attempt - 2).min(63);
        self.base_ms.saturating_shl(shift).min(self.cap_ms)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: Self::MAX_ATTEMPTS, base_ms: 5, cap_ms: 80 }
    }
}

/// What recovery cost a round: retries, full shard relaunches, and the
/// total simulated backoff the schedule would have slept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Operations retried after a delivery failure.
    pub retries: u64,
    /// Shard enclaves relaunched (kill recovery).
    pub relaunches: u64,
    /// Total simulated backoff, milliseconds.
    pub backoff_ms: u64,
}

impl RecoveryStats {
    /// The recovery work done since `base` — a snapshot taken earlier
    /// from the same runtime. Counters are monotone, so the per-round
    /// delta the round report embeds is a plain field-wise subtraction.
    pub fn since(self, base: RecoveryStats) -> RecoveryStats {
        RecoveryStats {
            retries: self.retries.saturating_sub(base.retries),
            relaunches: self.relaunches.saturating_sub(base.relaunches),
            backoff_ms: self.backoff_ms.saturating_sub(base.backoff_ms),
        }
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        if self == 0 {
            0
        } else if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_explicit_grammar() {
        let plan = FaultPlan::parse("kill@2.0, tamper@5.3 ,drop@0.1,receipt@e.2,stale@1.0")
            .expect("well-formed spec");
        assert_eq!(
            plan.events(),
            &[
                FaultEvent { kind: FaultKind::ShardKill, chunk: 2, shard: 0 },
                FaultEvent { kind: FaultKind::TunnelTamper, chunk: 5, shard: 3 },
                FaultEvent { kind: FaultKind::TunnelDrop, chunk: 0, shard: 1 },
                FaultEvent { kind: FaultKind::ReceiptCorrupt, chunk: EGRESS_CHUNK, shard: 2 },
                // stale is canonicalized to the restore/egress phase.
                FaultEvent { kind: FaultKind::StaleSeal, chunk: EGRESS_CHUNK, shard: 0 },
            ]
        );
        // Round-trips through render (stale now prints as egress).
        let again = FaultPlan::parse(&plan.render()).expect("render is parseable");
        assert_eq!(again, plan);
        // Per-event rendering — the telemetry fault-site labels.
        assert_eq!(plan.events()[0].render(), "kill@2.0");
        assert_eq!(plan.events()[3].render(), "receipt@e.2");
        assert_eq!(plan.events()[4].render(), "stale@e.0");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in
            ["boom@1.0", "kill@x.0", "kill@1", "kill1.0", "seed:7x3@4", "seed:7@4.2", "kill@1.z"]
        {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        assert_eq!(FaultPlan::parse("").expect("empty is a no-op"), FaultPlan::empty());
    }

    #[test]
    fn scripted_is_deterministic_and_bounded() {
        let a = FaultPlan::scripted(1337, 5, 6, 4);
        let b = FaultPlan::parse("seed:1337x5@6.4").expect("scripted spec");
        assert_eq!(a, b, "seed form must match the generator");
        assert_eq!(a.remaining(), 5);
        for e in a.events() {
            assert!(e.chunk < 6 || e.chunk == EGRESS_CHUNK);
            assert!(e.shard < 4);
        }
        assert_ne!(a, FaultPlan::scripted(1338, 5, 6, 4), "seed must matter");
    }

    #[test]
    fn scripted_sites_stay_recoverable() {
        // Any scripted plan must keep every site under the retry budget:
        // ≤ 2 delivery failures and ≤ 1 of each non-delivery kind.
        for seed in 0..50u64 {
            let plan = FaultPlan::scripted(seed, 12, 5, 3);
            for e in plan.events() {
                let at_site =
                    plan.events().iter().filter(|x| x.chunk == e.chunk && x.shard == e.shard);
                let delivery = at_site
                    .clone()
                    .filter(|x| {
                        matches!(
                            x.kind,
                            FaultKind::TunnelTamper
                                | FaultKind::TunnelDrop
                                | FaultKind::ReceiptCorrupt
                        )
                    })
                    .count();
                let same_kind = at_site.filter(|x| x.kind == e.kind).count();
                assert!(delivery <= 2, "seed {seed}: {} delivery faults at one site", delivery);
                if !matches!(
                    e.kind,
                    FaultKind::TunnelTamper | FaultKind::TunnelDrop | FaultKind::ReceiptCorrupt
                ) {
                    assert!(same_kind <= 1, "seed {seed}: stacked {:?}", e.kind);
                }
            }
        }
    }

    #[test]
    fn fire_consumes_one_event_per_call() {
        let mut plan = FaultPlan::parse("tamper@1.0,tamper@1.0,kill@1.0").expect("spec");
        assert!(plan.fire(FaultKind::TunnelTamper, 1, 0));
        assert!(plan.fire(FaultKind::TunnelTamper, 1, 0));
        assert!(!plan.fire(FaultKind::TunnelTamper, 1, 0), "both tampers consumed");
        assert!(!plan.fire(FaultKind::ShardKill, 2, 0), "wrong site never fires");
        assert!(!plan.fire(FaultKind::ShardKill, 1, 1), "wrong shard never fires");
        assert!(plan.fire(FaultKind::ShardKill, 1, 0));
        assert!(plan.is_empty());
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(1), 0, "first attempt is immediate");
        assert_eq!(p.backoff_ms(2), 5);
        assert_eq!(p.backoff_ms(3), 10);
        assert_eq!(p.backoff_ms(4), 20);
        assert_eq!(p.backoff_ms(10), 80, "capped");
        let huge = RetryPolicy { max_attempts: 200, base_ms: u64::MAX / 2, cap_ms: u64::MAX };
        assert_eq!(huge.backoff_ms(100), u64::MAX, "shift saturates, never overflows");
    }
}
