//! Shard plans: how the `G`-region dimension is partitioned across shard
//! enclaves, and how the monolithic round's EPC charges stripe over them.
//!
//! A [`ShardPlan`] is a sorted list of stripe boundaries over `0..d`. The
//! sharded round keeps the *coordinator's* canonical accounting untouched
//! (it is what the round report and the hard bitwise invariants are
//! defined over) and mirrors a striped copy of every dimension-
//! proportional charge onto the shard budgets via [`split_charge`] — an
//! exact integer split: the per-shard charges always telescope back to
//! the original byte count, so shard budgets balance to zero exactly when
//! the coordinator's does.

use crate::digest::TraceDigest;

/// A partition of the model dimension `0..d` into `S` contiguous stripes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Stripe boundaries: `bounds[i]..bounds[i+1]` is shard `i`'s stripe.
    /// Always starts at 0, ends at `d`, and is strictly increasing — every
    /// shard owns at least one coordinate.
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// An even partition of `0..d` into `shards` stripes; the first
    /// `d mod shards` stripes get one extra coordinate.
    ///
    /// # Panics
    /// If `shards == 0` or `shards > d` (a stripe must be non-empty).
    pub fn even(d: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(shards <= d, "cannot split {d} coordinates into {shards} non-empty stripes");
        let (base, extra) = (d / shards, d % shards);
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut at = 0;
        bounds.push(at);
        for i in 0..shards {
            at += base + usize::from(i < extra);
            bounds.push(at);
        }
        ShardPlan { bounds }
    }

    /// A partition with explicit interior boundaries (sorted, strictly
    /// inside `0..d` and strictly increasing).
    ///
    /// # Panics
    /// If the boundaries are not strictly increasing within `1..d`.
    pub fn from_boundaries(d: usize, interior: &[usize]) -> Self {
        let mut bounds = Vec::with_capacity(interior.len() + 2);
        bounds.push(0);
        for &b in interior {
            assert!(b > *bounds.last().expect("non-empty") && b < d, "boundary {b} out of order");
            bounds.push(b);
        }
        bounds.push(d);
        ShardPlan { bounds }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The model dimension the plan partitions.
    pub fn d(&self) -> usize {
        *self.bounds.last().expect("non-empty")
    }

    /// Shard `i`'s stripe as a coordinate range.
    pub fn range(&self, i: usize) -> core::ops::Range<usize> {
        self.bounds[i]..self.bounds[i + 1]
    }

    /// Width of shard `i`'s stripe.
    pub fn span(&self, i: usize) -> usize {
        self.bounds[i + 1] - self.bounds[i]
    }

    /// The shard owning coordinate `index`.
    ///
    /// # Panics
    /// If `index >= d`.
    pub fn owner(&self, index: usize) -> usize {
        assert!(index < self.d(), "coordinate {index} outside dimension {}", self.d());
        // partition_point returns the count of bounds <= index; bounds[0]
        // is 0 so the count is >= 1, and the owner is that count - 1.
        self.bounds.partition_point(|&b| b <= index) - 1
    }

    /// Splits a dimension-proportional charge of `bytes` across the
    /// shards, proportionally to stripe width, rounding so the parts sum
    /// to exactly `bytes`: shard `i` is charged
    /// `bytes·bounds[i+1]/d − bytes·bounds[i]/d` (integer division), a
    /// telescoping series. Deterministic, so alloc and free splits always
    /// mirror each other and shard budgets balance exactly.
    pub fn split_charge(&self, bytes: u64) -> Vec<u64> {
        let d = self.d() as u128;
        let bytes = bytes as u128;
        (0..self.shards())
            .map(|i| {
                let hi = bytes * self.bounds[i + 1] as u128 / d;
                let lo = bytes * self.bounds[i] as u128 / d;
                (hi - lo) as u64
            })
            .collect()
    }

    /// Merges per-shard trace digests into one canonical digest,
    /// absorbing them in ascending shard order (the same digest-of-digests
    /// construction [`crate::ParallelTracer`] uses at thread join).
    pub fn merge_digests(&self, per_shard: &[TraceDigest]) -> TraceDigest {
        assert_eq!(per_shard.len(), self.shards(), "one digest per shard");
        let mut merged = TraceDigest::new();
        for d in per_shard {
            merged.absorb_child(*d);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkingSet;

    #[test]
    fn even_plan_covers_dimension() {
        let p = ShardPlan::even(10, 4);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.d(), 10);
        // 10 = 3 + 3 + 2 + 2, front-loaded remainder.
        assert_eq!(
            (0..4).map(|i| p.span(i)).collect::<Vec<_>>(),
            vec![3, 3, 2, 2],
            "remainder coordinates go to the leading stripes"
        );
        assert_eq!(p.range(1), 3..6);
        let total: usize = (0..p.shards()).map(|i| p.span(i)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn single_shard_plan_is_monolithic() {
        let p = ShardPlan::even(16384, 1);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.range(0), 0..16384);
        assert_eq!(p.split_charge(12345), vec![12345]);
    }

    #[test]
    fn owner_matches_ranges() {
        let p = ShardPlan::from_boundaries(100, &[10, 55]);
        assert_eq!(p.shards(), 3);
        for i in 0..p.shards() {
            for idx in p.range(i) {
                assert_eq!(p.owner(idx), i, "coordinate {idx}");
            }
        }
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(99), 2);
    }

    #[test]
    #[should_panic(expected = "outside dimension")]
    fn owner_rejects_out_of_range() {
        ShardPlan::even(8, 2).owner(8);
    }

    #[test]
    fn split_charge_telescopes_exactly() {
        // Adversarial widths and byte counts: the parts must always sum
        // to the whole, with no drift for repeated alloc/free mirroring.
        let p = ShardPlan::from_boundaries(7, &[1, 2, 5]);
        for bytes in [0u64, 1, 6, 7, 8, 1000, u32::MAX as u64 * 13 + 5] {
            let parts = p.split_charge(bytes);
            assert_eq!(parts.iter().sum::<u64>(), bytes, "split of {bytes} must telescope");
        }
        // Proportionality: a stripe 5× wider gets (about) 5× the bytes.
        let parts = p.split_charge(7_000);
        assert_eq!(parts, vec![1_000, 1_000, 3_000, 2_000]);
    }

    #[test]
    fn split_charge_survives_huge_products() {
        // bytes·bound would overflow u64 (hence the u128 arithmetic):
        // 1 TiB over a 2^24 dimension.
        let p = ShardPlan::even(1 << 24, 8);
        let bytes = 1u64 << 40;
        let parts = p.split_charge(bytes);
        assert_eq!(parts.iter().sum::<u64>(), bytes);
        assert!(parts.iter().all(|&b| b == bytes / 8), "even plan, even split");
    }

    #[test]
    fn split_alloc_free_balances_shard_budgets() {
        let p = ShardPlan::even(1000, 3);
        let mut ws: Vec<WorkingSet> = (0..3).map(|_| WorkingSet::default()).collect();
        for bytes in [17u64, 999, 123_456] {
            for (w, part) in ws.iter_mut().zip(p.split_charge(bytes)) {
                w.alloc(part);
            }
        }
        for bytes in [17u64, 999, 123_456] {
            for (w, part) in ws.iter_mut().zip(p.split_charge(bytes)) {
                w.free(part);
            }
        }
        for w in &ws {
            assert_eq!(w.live, 0, "mirrored alloc/free must balance exactly");
        }
    }

    #[test]
    fn merge_digests_is_order_sensitive_and_deterministic() {
        use crate::tracer::Op;
        let p = ShardPlan::even(8, 2);
        let mut a = TraceDigest::new();
        a.absorb(1, 0, Op::Read);
        let mut b = TraceDigest::new();
        b.absorb(1, 64, Op::Write);
        let m1 = p.merge_digests(&[a, b]);
        let m2 = p.merge_digests(&[a, b]);
        assert_eq!(m1.value(), m2.value(), "deterministic");
        let swapped = p.merge_digests(&[b, a]);
        assert_ne!(m1.value(), swapped.value(), "shard order is canonical");
    }
}
