//! EPC paging model and the SGX cost estimator.
//!
//! SGX's Enclave Page Cache is ~96 MB user-usable on the paper's hardware;
//! touching a page beyond that triggers an encrypted-paging fault costing
//! tens of microseconds (Section 2.2, citing the VAULT measurements). This
//! drives the Figure 10 cliff — at `N = 10^4` clients the Advanced sort
//! vector is ~122 MB > EPC and Batcher's long-stride exchanges page-thrash —
//! and the Figure 11 recovery via grouping.

use std::collections::HashMap;

use crate::{CacheConfig, CacheSim, PAGE_BYTES};

/// EPC paging counters.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpcStats {
    /// Page accesses resident in EPC.
    pub resident: u64,
    /// Page faults (page had to be swapped in with decrypt+integrity check).
    pub faults: u64,
}

/// LRU model of the EPC at page granularity.
pub struct EpcSim {
    capacity_pages: usize,
    /// page id -> LRU stamp.
    resident: HashMap<u64, u64>,
    clock: u64,
    stats: EpcStats,
}

impl EpcSim {
    /// EPC with a byte capacity (the paper's machine: 96 MB usable).
    pub fn new(capacity_bytes: u64) -> Self {
        EpcSim {
            capacity_pages: (capacity_bytes / PAGE_BYTES) as usize,
            resident: HashMap::new(),
            clock: 0,
            stats: EpcStats::default(),
        }
    }

    /// The paper's 96 MB user-usable EPC.
    pub fn paper_epc() -> Self {
        Self::new(96 << 20)
    }

    /// Replays one access; returns `true` if it faulted.
    pub fn access(&mut self, region: u32, byte_off: u64) -> bool {
        let addr = ((region as u64) << 40) | (byte_off & ((1 << 40) - 1));
        let page = addr / PAGE_BYTES;
        self.clock += 1;
        if self.resident.contains_key(&page) {
            self.resident.insert(page, self.clock);
            self.stats.resident += 1;
            false
        } else {
            if self.resident.len() >= self.capacity_pages {
                // Evict the least recently used page. Linear scan is fine:
                // eviction only happens once per fault and the map is bounded
                // by the EPC page count.
                if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &stamp)| stamp) {
                    self.resident.remove(&victim);
                }
            }
            self.resident.insert(page, self.clock);
            self.stats.faults += 1;
            true
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EpcStats {
        self.stats
    }
}

/// Byte-level live/peak accounting for an enclave working set.
///
/// The streaming round pipeline charges every transient (a staged upload
/// chunk, an aggregator's scratch) and resident (the dense accumulator,
/// buffered cells) allocation here, so the *peak* — the number the EPC
/// limit is compared against — reflects what is simultaneously live, not
/// what a whole round touches in total. Freeing more than is live is a
/// bug in the caller's pairing, so [`WorkingSet::free`] saturates and
/// debug-asserts.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkingSet {
    /// Currently live bytes.
    pub live: u64,
    /// High-water mark over the accounting window.
    pub peak: u64,
}

impl WorkingSet {
    /// Records an allocation of `bytes`.
    pub fn alloc(&mut self, bytes: u64) {
        self.live += bytes;
        self.peak = self.peak.max(self.live);
    }

    /// Records a release of `bytes`.
    pub fn free(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.live, "freeing {bytes} bytes with {} live", self.live);
        self.live = self.live.saturating_sub(bytes);
    }

    /// Starts a new accounting epoch: the peak is rewound to the live
    /// set, so subsequent highs answer "what peaked *since* this point"
    /// (e.g. per round) instead of over the whole lifetime.
    pub fn begin_epoch(&mut self) {
        self.peak = self.live;
    }

    /// Adjusts the live set to a new size for a buffer that grew or shrank
    /// in place (an accumulator that buffers cells across chunks): frees
    /// `old` and allocates `new` as one event, so the peak never counts
    /// both generations of the same buffer.
    pub fn resize(&mut self, old: u64, new: u64) {
        self.free(old);
        self.alloc(new);
    }

    /// [`WorkingSet::alloc`] that also feeds the side-band telemetry
    /// plane: adds `bytes` to the `epc_charge_bytes` counter under
    /// `budget` (e.g. `"coordinator"`, `"shard2"`). The accounting
    /// itself is unchanged — telemetry reads, never perturbs.
    pub fn alloc_counted(
        &mut self,
        bytes: u64,
        telemetry: &olive_telemetry::Telemetry,
        budget: &str,
    ) {
        telemetry.count("epc_charge_bytes", budget, bytes);
        self.alloc(bytes);
    }

    /// [`WorkingSet::free`] mirrored onto the `epc_free_bytes` counter.
    pub fn free_counted(
        &mut self,
        bytes: u64,
        telemetry: &olive_telemetry::Telemetry,
        budget: &str,
    ) {
        telemetry.count("epc_free_bytes", budget, bytes);
        self.free(bytes);
    }

    /// [`WorkingSet::resize`] with both sides mirrored onto the
    /// counters: `epc_free_bytes` gains `old`, `epc_charge_bytes` gains
    /// `new` — the same two events a `free_counted` + `alloc_counted`
    /// pair emits, so the telemetry stream is unchanged while the peak
    /// never counts both generations of the same buffer.
    pub fn resize_counted(
        &mut self,
        old: u64,
        new: u64,
        telemetry: &olive_telemetry::Telemetry,
        budget: &str,
    ) {
        telemetry.count("epc_free_bytes", budget, old);
        telemetry.count("epc_charge_bytes", budget, new);
        self.resize(old, new);
    }
}

/// Latency constants (nanoseconds) for converting hit/miss/fault counts into
/// an estimated execution-time contribution.
///
/// Values follow the literature the paper cites: an L3 hit ~12 ns, a DRAM
/// access through SGX's memory encryption engine ~100 ns, an EPC page fault
/// (EWB + eviction + integrity verification) ~40 µs.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost of an access served by cache (ns).
    pub cache_hit_ns: f64,
    /// Cost of an access that misses cache but stays in EPC (ns).
    pub dram_mee_ns: f64,
    /// Cost of an EPC page fault (ns).
    pub epc_fault_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { cache_hit_ns: 12.0, dram_mee_ns: 100.0, epc_fault_ns: 40_000.0 }
    }
}

/// Combined L3 + EPC replay producing a time estimate.
pub struct SgxCostEstimate {
    cache: CacheSim,
    epc: EpcSim,
    model: CostModel,
}

impl SgxCostEstimate {
    /// Estimator with the paper's machine constants.
    pub fn paper_machine() -> Self {
        SgxCostEstimate {
            cache: CacheSim::new(CacheConfig::paper_l3()),
            epc: EpcSim::paper_epc(),
            model: CostModel::default(),
        }
    }

    /// Estimator with custom geometry/model.
    pub fn new(cache: CacheConfig, epc_bytes: u64, model: CostModel) -> Self {
        SgxCostEstimate { cache: CacheSim::new(cache), epc: EpcSim::new(epc_bytes), model }
    }

    /// Replays one access through cache then (on miss) EPC.
    pub fn access(&mut self, region: u32, byte_off: u64) {
        let hit = self.cache.access(region, byte_off);
        if !hit {
            self.epc.access(region, byte_off);
        }
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> crate::CacheStats {
        self.cache.stats()
    }

    /// EPC counters.
    pub fn epc_stats(&self) -> EpcStats {
        self.epc.stats()
    }

    /// Estimated memory-system time in nanoseconds.
    pub fn estimated_ns(&self) -> f64 {
        let c = self.cache.stats();
        let e = self.epc.stats();
        c.hits as f64 * self.model.cache_hit_ns
            + e.resident as f64 * self.model.dram_mee_ns
            + e.faults as f64 * self.model.epc_fault_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_never_faults_after_load() {
        let mut epc = EpcSim::new(16 * PAGE_BYTES);
        for _ in 0..4 {
            for p in 0..8u64 {
                epc.access(0, p * PAGE_BYTES);
            }
        }
        let s = epc.stats();
        assert_eq!(s.faults, 8, "one cold fault per page");
        assert_eq!(s.resident, 24);
    }

    #[test]
    fn oversized_working_set_thrashes() {
        let mut epc = EpcSim::new(4 * PAGE_BYTES);
        // Cycle through 8 pages, LRU: every access faults.
        for _ in 0..3 {
            for p in 0..8u64 {
                epc.access(0, p * PAGE_BYTES);
            }
        }
        assert_eq!(epc.stats().faults, 24);
        assert_eq!(epc.stats().resident, 0);
    }

    #[test]
    fn lru_keeps_hot_page() {
        let mut epc = EpcSim::new(2 * PAGE_BYTES);
        epc.access(0, 0); // page 0
        epc.access(0, PAGE_BYTES); // page 1
        epc.access(0, 0); // refresh page 0
        epc.access(0, 2 * PAGE_BYTES); // evicts page 1
        assert!(!epc.access(0, 0), "page 0 must be resident");
        assert!(epc.access(0, PAGE_BYTES), "page 1 must have been evicted");
    }

    #[test]
    fn cost_estimate_orders_workloads_correctly() {
        // A streaming workload over 2x EPC must cost more than the same
        // number of accesses within EPC.
        let run = |pages: u64| {
            let mut est = SgxCostEstimate::new(
                CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 64 },
                8 * PAGE_BYTES,
                CostModel::default(),
            );
            for i in 0..4096u64 {
                est.access(0, (i % pages) * PAGE_BYTES);
            }
            est.estimated_ns()
        };
        assert!(run(16) > run(4) * 2.0);
    }

    #[test]
    fn working_set_tracks_peak_not_total() {
        let mut ws = WorkingSet::default();
        ws.alloc(100);
        ws.free(100);
        ws.alloc(60);
        assert_eq!(ws.peak, 100, "peak is simultaneous-live, not cumulative");
        assert_eq!(ws.live, 60);
        ws.resize(60, 90);
        assert_eq!(ws.live, 90);
        assert_eq!(ws.peak, 100, "resize must not double-count the old buffer");
        ws.resize(90, 150);
        assert_eq!(ws.peak, 150);
    }

    #[test]
    fn resize_counted_emits_free_then_charge_without_double_peak() {
        let t = olive_telemetry::Telemetry::to_buffer();
        let mut ws = WorkingSet::default();
        ws.alloc_counted(100, &t, "coordinator");
        ws.resize_counted(100, 140, &t, "coordinator");
        assert_eq!(ws.live, 140);
        assert_eq!(ws.peak, 140, "resize must not count both generations");
        t.flush_stats();
        let out = t.buffer_contents().unwrap();
        assert!(out.contains("\"epc_charge_bytes\""), "charge counter missing: {out}");
        assert!(out.contains("\"epc_free_bytes\""), "free counter missing: {out}");
    }

    #[test]
    fn working_set_epoch_rewinds_peak_to_live() {
        let mut ws = WorkingSet::default();
        ws.alloc(100);
        ws.free(80);
        ws.begin_epoch();
        assert_eq!(ws.peak, 20, "epoch peak starts at the surviving live set");
        ws.alloc(30);
        ws.free(30);
        assert_eq!(ws.peak, 50, "peak now answers per-epoch, not lifetime");
        assert_eq!(ws.live, 20);
    }

    #[test]
    fn paper_machine_constants() {
        let est = SgxCostEstimate::paper_machine();
        assert_eq!(est.cache.config().size_bytes, 8 << 20);
    }
}
