//! Streaming 128-bit trace digest.
//!
//! Obliviousness checks compare access *sequences* that can run to billions
//! of events; storing them is impractical, so we fold each event into a
//! 128-bit accumulator. This is a non-cryptographic mixing function (two
//! independent 64-bit lanes of multiply-xor-rotate, seeded differently);
//! distinct traces colliding in both lanes by accident is ~2^-128 and
//! irrelevant for tests. It is *order-sensitive* by construction.

use crate::tracer::{Op, RegionId};

/// A 128-bit order-sensitive digest of an access sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct TraceDigest {
    lane0: u64,
    lane1: u64,
    /// Number of events absorbed, part of the identity (distinguishes a
    /// trace from its prefix even in the unlikely event of lane collision).
    count: u64,
}

const SEED0: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED1: u64 = 0xbf58_476d_1ce4_e5b9;
const MULT0: u64 = 0xff51_afd7_ed55_8ccd;
const MULT1: u64 = 0xc4ce_b9fe_1a85_ec53;

#[inline]
fn mix(state: u64, value: u64, mult: u64) -> u64 {
    let mut x = state ^ value.wrapping_mul(mult);
    x ^= x >> 29;
    x = x.wrapping_mul(mult);
    x ^= x >> 32;
    x.rotate_left(23)
}

impl Default for TraceDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceDigest {
    /// Fresh digest.
    pub fn new() -> Self {
        TraceDigest { lane0: SEED0, lane1: SEED1, count: 0 }
    }

    /// Folds one access event into the digest.
    #[inline]
    pub fn absorb(&mut self, region: RegionId, offset: u64, op: Op) {
        let tag = ((region as u64) << 1) | (op == Op::Write) as u64;
        let word = offset.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ (tag << 56) ^ tag;
        self.lane0 = mix(self.lane0, word, MULT0);
        self.lane1 = mix(self.lane1, word ^ SEED1, MULT1);
        self.count += 1;
    }

    /// Folds a whole child digest into this one (deterministic merge for
    /// parallel traces).
    ///
    /// A multi-threaded oblivious region records one trace per worker; the
    /// combined adversary view is defined as the parent digest with every
    /// worker digest absorbed **in a fixed, data-independent order** (the
    /// group schedule). The merge mixes both lanes and the child's event
    /// count, so it is order-sensitive across children and distinguishes a
    /// child trace from any prefix of it — the same collision story as
    /// [`TraceDigest::absorb`]. Note the result is a digest *of digests*:
    /// it does not equal absorbing the child's events one by one.
    pub fn absorb_child(&mut self, child: TraceDigest) {
        self.lane0 = mix(self.lane0, child.lane0, MULT0);
        self.lane0 = mix(self.lane0, child.count ^ SEED0, MULT0);
        self.lane1 = mix(self.lane1, child.lane1 ^ SEED1, MULT1);
        self.lane1 = mix(self.lane1, child.count, MULT1);
        self.count += child.count;
    }

    /// Number of events absorbed.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True if no events were absorbed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The digest value as a u128 (for display / comparison).
    pub fn value(&self) -> u128 {
        ((self.lane0 as u128) << 64) | self.lane1 as u128
    }
}

impl core::fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:032x}/{}", self.value(), self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digests_equal() {
        assert_eq!(TraceDigest::new(), TraceDigest::new());
        assert!(TraceDigest::new().is_empty());
    }

    #[test]
    fn absorb_changes_state() {
        let mut d = TraceDigest::new();
        let before = d;
        d.absorb(1, 0, Op::Read);
        assert_ne!(d, before);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn order_sensitive() {
        let mut a = TraceDigest::new();
        a.absorb(1, 10, Op::Read);
        a.absorb(1, 20, Op::Read);
        let mut b = TraceDigest::new();
        b.absorb(1, 20, Op::Read);
        b.absorb(1, 10, Op::Read);
        assert_ne!(a, b);
    }

    #[test]
    fn op_and_region_sensitive() {
        let mut a = TraceDigest::new();
        a.absorb(1, 10, Op::Read);
        let mut b = TraceDigest::new();
        b.absorb(1, 10, Op::Write);
        let mut c = TraceDigest::new();
        c.absorb(2, 10, Op::Read);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn no_trivial_collisions_over_small_space() {
        // All single-event digests over a small parameter grid are distinct.
        let mut seen = std::collections::HashSet::new();
        for region in 0..4u32 {
            for offset in 0..1000u64 {
                for op in [Op::Read, Op::Write] {
                    let mut d = TraceDigest::new();
                    d.absorb(region, offset, op);
                    assert!(seen.insert(d.value()), "collision at {region}/{offset}/{op:?}");
                }
            }
        }
    }

    #[test]
    fn child_merge_is_deterministic_and_order_sensitive() {
        let child = |seed: u64| {
            let mut d = TraceDigest::new();
            d.absorb(1, seed, Op::Read);
            d.absorb(1, seed + 1, Op::Write);
            d
        };
        let merge = |order: [u64; 2]| {
            let mut parent = TraceDigest::new();
            parent.absorb_child(child(order[0]));
            parent.absorb_child(child(order[1]));
            parent
        };
        assert_eq!(merge([10, 20]), merge([10, 20]), "same children, same order");
        assert_ne!(merge([10, 20]), merge([20, 10]), "join order must matter");
        assert_eq!(merge([10, 20]).len(), 4, "counts accumulate");
    }

    #[test]
    fn child_merge_differs_from_event_replay() {
        // The merged value is a digest of digests, not a replay: combining
        // one-event children is distinguishable from absorbing the same
        // events directly.
        let mut child = TraceDigest::new();
        child.absorb(1, 7, Op::Read);
        let mut merged = TraceDigest::new();
        merged.absorb_child(child);
        let mut replayed = TraceDigest::new();
        replayed.absorb(1, 7, Op::Read);
        assert_ne!(merged, replayed);
        assert_eq!(merged.len(), replayed.len());
    }

    #[test]
    fn prefix_differs_from_full() {
        let mut a = TraceDigest::new();
        a.absorb(1, 1, Op::Read);
        let mut b = a;
        b.absorb(1, 2, Op::Read);
        assert_ne!(a, b);
    }
}
