//! Set-associative LRU cache simulator.
//!
//! Section 5.3 of the paper attributes the Advanced algorithm's behaviour at
//! scale to L3-cache hit rates (8 MB on the authors' Xeon E-2174G): Batcher
//! sorting a vector larger than L3 thrashes, which is why the grouped
//! optimization (group size `h`) has a U-shaped cost curve (Figure 11).
//! This simulator replays a trace against a configurable cache to expose
//! exactly that effect independent of the host machine.

use crate::CACHELINE_BYTES;

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The paper's L3: 8 MB, 16-way, 64 B lines.
    pub fn paper_l3() -> Self {
        CacheConfig { size_bytes: 8 << 20, ways: 16, line_bytes: CACHELINE_BYTES }
    }

    /// The paper's L2: 1 MB, 16-way (the "small waviness" in Figure 11).
    pub fn paper_l2() -> Self {
        CacheConfig { size_bytes: 1 << 20, ways: 16, line_bytes: CACHELINE_BYTES }
    }

    fn num_sets(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize / self.ways
    }
}

/// Hit/miss counters.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses replayed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; 0 for an empty trace.
    pub fn miss_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.misses as f64 / self.total() as f64
        }
    }
}

/// A set-associative LRU cache fed with (region, byte offset) accesses.
///
/// Regions are mapped to disjoint address spaces so two buffers never alias.
pub struct CacheSim {
    config: CacheConfig,
    /// `sets[s]` holds up to `ways` tags in LRU order (front = MRU).
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.ways); config.num_sets()];
        CacheSim { config, sets, stats: CacheStats::default() }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Replays one access; returns `true` on hit.
    pub fn access(&mut self, region: u32, byte_off: u64) -> bool {
        // Give each region a disjoint 2^40-byte address window.
        let addr = ((region as u64) << 40) | (byte_off & ((1 << 40) - 1));
        let line = addr / self.config.line_bytes;
        let num_sets = self.sets.len() as u64;
        let set_idx = (line % num_sets) as usize;
        let tag = line / num_sets;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to front (MRU).
            set[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.ways {
                set.pop();
            }
            set.insert(0, tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        CacheSim::new(CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64 })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::paper_l3().num_sets(), 8192);
        assert_eq!(CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64 }.num_sets(), 4);
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0, 0));
        assert!(c.access(0, 0));
        assert!(c.access(0, 63)); // same line
        assert!(!c.access(0, 64)); // next line
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = num_sets * line = 256).
        c.access(0, 0);
        c.access(0, 256);
        c.access(0, 512); // evicts line 0 (LRU)
        assert!(!c.access(0, 0), "line 0 must have been evicted");
        assert!(c.access(0, 512));
    }

    #[test]
    fn lru_order_updated_on_hit() {
        let mut c = tiny();
        c.access(0, 0);
        c.access(0, 256);
        c.access(0, 0); // refresh line 0 → 256 becomes LRU
        c.access(0, 512); // evicts 256
        assert!(c.access(0, 0));
        assert!(!c.access(0, 256));
    }

    #[test]
    fn regions_do_not_alias() {
        let mut c = tiny();
        c.access(0, 0);
        assert!(!c.access(1, 0), "same offset in another region is a distinct line");
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = CacheSim::new(CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 64 });
        for off in (0..4096u64).step_by(64) {
            c.access(0, off);
        }
        c.reset_stats_for_test();
        for off in (0..4096u64).step_by(64) {
            assert!(c.access(0, off));
        }
    }

    impl CacheSim {
        fn reset_stats_for_test(&mut self) {
            self.stats = CacheStats::default();
        }
    }

    #[test]
    fn streaming_larger_than_cache_always_misses() {
        let mut c = tiny();
        let mut all_missed = true;
        for round in 0..3 {
            for off in (0..4096u64).step_by(64) {
                let hit = c.access(0, off);
                if round > 0 {
                    all_missed &= !hit;
                }
            }
        }
        assert!(all_missed, "8x-capacity streaming working set can never hit in LRU");
    }
}
