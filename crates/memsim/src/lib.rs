//! # olive-memsim
//!
//! Memory-access-pattern instrumentation for the Olive reproduction.
//!
//! The paper's entire threat model (Sections 2.3 and 3.3) is about what an
//! untrusted OS/hypervisor learns from the *sequence of memory accesses* a
//! TEE performs: `Accesses = [(addr, op, val), …]`, observed at element or
//! cacheline granularity. Since this reproduction simulates the enclave in
//! software, this crate plays the role of the adversary's probe:
//!
//! * [`Tracer`] — a zero-cost-when-disabled hook that algorithms call on
//!   every load/store of adversary-visible memory. [`NullTracer`]
//!   monomorphizes away; [`RecordingTracer`] records. [`ParallelTracer`]
//!   extends both with fork/join so data-parallel oblivious regions can
//!   record one trace per thread and merge them deterministically.
//! * [`TrackedBuf`] — a buffer wrapper that guarantees every access is
//!   reported to the tracer (used for the gradient buffers `G` and `G*`).
//! * [`TraceDigest`] — a 128-bit streaming digest of a trace so that
//!   obliviousness (Definition 2.1 with δ = 0: identical access sequences
//!   for any same-length inputs) can be checked without storing gigabytes.
//! * [`CacheSim`] / [`EpcSim`] — a set-associative LRU cache model and an
//!   SGX EPC paging model with the paper's constants (8 MB L3, 96 MB EPC,
//!   64 B lines, 4 KiB pages), driving the Figure 10/11 cost analysis.
//! * [`check`] — test harnesses (`assert_oblivious`, `assert_not_oblivious`)
//!   that turn Propositions 3.1, 3.2, 5.1 and 5.2 into executable tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buf;
pub mod cache;
pub mod check;
pub mod codec;
pub mod digest;
pub mod epc;
pub mod faults;
pub mod shard;
pub mod threads;
pub mod tracer;

pub use buf::TrackedBuf;
pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use check::{assert_not_oblivious, assert_oblivious, trace_of};
pub use codec::{StateError, StateReader, StateWriter};
pub use digest::TraceDigest;
pub use epc::{CostModel, EpcSim, EpcStats, SgxCostEstimate, WorkingSet};
pub use faults::{FaultEvent, FaultKind, FaultPlan, RecoveryStats, RetryPolicy, EGRESS_CHUNK};
pub use shard::ShardPlan;
pub use threads::default_threads;
pub use tracer::{
    Access, Granularity, NullTracer, Op, ParallelTracer, RecordingTracer, RegionId, Tracer,
    TracerStats,
};

/// Cacheline size assumed throughout the paper and this reproduction (bytes).
pub const CACHELINE_BYTES: u64 = 64;

/// SGX page size (bytes), the granularity of EPC paging.
pub const PAGE_BYTES: u64 = 4096;
