//! A tiny fixed-layout byte codec for checkpoint state blobs.
//!
//! Crash-safe rounds serialize aggregator and ORAM state into sealed
//! checkpoints. The blobs are only ever produced and consumed by the
//! same binary (the sealing key is bound to the enclave measurement),
//! so the format optimizes for auditability, not evolution: every field
//! is written little-endian at a fixed offset with explicit lengths,
//! and every read is bounds-checked so a corrupted or truncated
//! plaintext surfaces as a [`StateError`] instead of a panic.

use std::error::Error;
use std::fmt;

/// Why a serialized state blob could not be loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// The blob ended before a declared field.
    Truncated,
    /// A field held a value the format forbids (bad tag, bad length).
    Corrupt,
    /// The blob is well-formed but describes a different configuration
    /// than the object it is being loaded into (e.g. wrong dimension).
    Mismatch,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Truncated => write!(f, "state blob truncated"),
            StateError::Corrupt => write!(f, "state blob corrupt"),
            StateError::Mismatch => write!(f, "state blob does not match target configuration"),
        }
    }
}

impl Error for StateError {}

/// Append-only writer for state blobs.
#[derive(Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Start an empty blob.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a single byte (used for tags).
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the format is 64-bit regardless of host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f32` as its IEEE-754 bit pattern (bitwise-exact restore).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bitwise-exact restore).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, v: &[u32]) {
        self.put_usize(v.len());
        let start = self.buf.len();
        self.buf.resize(start + 4 * v.len(), 0);
        for (dst, &x) in self.buf[start..].chunks_exact_mut(4).zip(v) {
            dst.copy_from_slice(&x.to_le_bytes());
        }
    }

    /// Append a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_usize(v.len());
        let start = self.buf.len();
        self.buf.resize(start + 8 * v.len(), 0);
        for (dst, &x) in self.buf[start..].chunks_exact_mut(8).zip(v) {
            dst.copy_from_slice(&x.to_le_bytes());
        }
    }

    /// Append a length-prefixed `f32` slice (bit patterns).
    pub fn put_f32s(&mut self, v: &[f32]) {
        self.put_usize(v.len());
        let start = self.buf.len();
        self.buf.resize(start + 4 * v.len(), 0);
        for (dst, &x) in self.buf[start..].chunks_exact_mut(4).zip(v) {
            dst.copy_from_slice(&x.to_bits().to_le_bytes());
        }
    }
}

/// Bounds-checked cursor over a state blob.
pub struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        StateReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        let end = self.pos.checked_add(n).ok_or(StateError::Truncated)?;
        if end > self.bytes.len() {
            return Err(StateError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StateError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StateError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a `usize` stored as `u64`; rejects values over `usize::MAX`.
    pub fn get_usize(&mut self) -> Result<usize, StateError> {
        usize::try_from(self.get_u64()?).map_err(|_| StateError::Corrupt)
    }

    /// Read an `f32` bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, StateError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], StateError> {
        let n = self.get_usize()?;
        self.take(n)
    }

    /// Read a length-prefixed `u32` slice.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, StateError> {
        let n = self.get_usize()?;
        let raw = self.take(n.checked_mul(4).ok_or(StateError::Truncated)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
            .collect())
    }

    /// Read a length-prefixed `u64` slice.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, StateError> {
        let n = self.get_usize()?;
        let raw = self.take(n.checked_mul(8).ok_or(StateError::Truncated)?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .collect())
    }

    /// Read a length-prefixed `f32` slice (bit patterns).
    pub fn get_f32s(&mut self) -> Result<Vec<f32>, StateError> {
        let n = self.get_usize()?;
        let raw = self.take(n.checked_mul(4).ok_or(StateError::Truncated)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4 bytes"))))
            .collect())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Assert the whole blob was consumed; trailing bytes mean the blob
    /// was produced by a different (newer?) layout.
    pub fn expect_end(&self) -> Result<(), StateError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StateError::Corrupt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_usize(12);
        w.put_f32(-0.0);
        w.put_f64(f64::NAN);
        w.put_bytes(b"abc");
        w.put_u32s(&[1, 2, 3]);
        w.put_u64s(&[9]);
        w.put_f32s(&[1.5, -2.25]);
        let bytes = w.into_bytes();

        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_usize().unwrap(), 12);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64s().unwrap(), vec![9]);
        assert_eq!(
            r.get_f32s().unwrap().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            vec![1.5f32.to_bits(), (-2.25f32).to_bits()]
        );
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_blob_is_an_error_not_a_panic() {
        let mut w = StateWriter::new();
        w.put_u64(5);
        let mut bytes = w.into_bytes();
        bytes.truncate(6);
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u64(), Err(StateError::Truncated));
    }

    #[test]
    fn oversized_length_prefix_is_truncated_not_oom() {
        // A corrupted length prefix must not drive Vec::with_capacity
        // into an absurd allocation before the bounds check fires.
        let mut w = StateWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u64s().unwrap_err(), StateError::Truncated);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = StateWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.expect_end(), Err(StateError::Corrupt));
    }
}
