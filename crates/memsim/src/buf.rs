//! [`TrackedBuf`]: a buffer whose every access is reported to a tracer.
//!
//! Aggregation algorithms in `olive-core` hold their adversary-visible state
//! (the concatenated client gradients `G` and the dense accumulator `G*`)
//! in `TrackedBuf`s, so the recorded trace is faithful by construction —
//! there is no unsupervised access path.

use crate::tracer::{Op, RegionId, Tracer};

/// A `Vec<T>` wrapper that reports every read and write to a [`Tracer`].
///
/// `T: Copy` keeps the access API by-value, mirroring word-sized loads and
/// stores; gradient cells are `(u32, f32)` pairs or `f32` scalars.
#[derive(Clone, Debug)]
pub struct TrackedBuf<T: Copy> {
    data: Vec<T>,
    region: RegionId,
}

impl<T: Copy> TrackedBuf<T> {
    /// Wraps `data` as region `region`.
    pub fn new(region: RegionId, data: Vec<T>) -> Self {
        TrackedBuf { data, region }
    }

    /// A zero-filled buffer of `len` elements.
    pub fn zeroed(region: RegionId, len: usize) -> Self
    where
        T: Default,
    {
        TrackedBuf { data: vec![T::default(); len], region }
    }

    /// The region id this buffer reports accesses under.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline(always)]
    fn byte_off(i: usize) -> u64 {
        (i * core::mem::size_of::<T>()) as u64
    }

    /// Traced load of element `i`.
    #[inline(always)]
    pub fn read<TR: Tracer>(&self, i: usize, tr: &mut TR) -> T {
        tr.touch(self.region, Self::byte_off(i), core::mem::size_of::<T>() as u32, Op::Read);
        self.data[i]
    }

    /// Traced store of element `i`.
    #[inline(always)]
    pub fn write<TR: Tracer>(&mut self, i: usize, v: T, tr: &mut TR) {
        tr.touch(self.region, Self::byte_off(i), core::mem::size_of::<T>() as u32, Op::Write);
        self.data[i] = v;
    }

    /// Traced swap of elements `i` and `j` (reads both, writes both —
    /// matching what an oblivious compare-exchange does at memory level).
    #[inline(always)]
    pub fn swap_elems<TR: Tracer>(&mut self, i: usize, j: usize, tr: &mut TR) {
        let sz = core::mem::size_of::<T>() as u32;
        tr.touch(self.region, Self::byte_off(i), sz, Op::Read);
        tr.touch(self.region, Self::byte_off(j), sz, Op::Read);
        tr.touch(self.region, Self::byte_off(i), sz, Op::Write);
        tr.touch(self.region, Self::byte_off(j), sz, Op::Write);
        self.data.swap(i, j);
    }

    /// Traced read of a pair `(i, j)` in one shot, used by compare-exchange
    /// networks. The trace is identical to two reads.
    #[inline(always)]
    pub fn read_pair<TR: Tracer>(&self, i: usize, j: usize, tr: &mut TR) -> (T, T) {
        (self.read(i, tr), self.read(j, tr))
    }

    /// Traced write of a pair.
    #[inline(always)]
    pub fn write_pair<TR: Tracer>(&mut self, i: usize, vi: T, j: usize, vj: T, tr: &mut TR) {
        self.write(i, vi, tr);
        self.write(j, vj, tr);
    }

    /// Untraced view of the underlying data. Only for use *outside* the
    /// adversary-observed window (e.g. checking results in tests, or
    /// enclave-private copies); never call this inside a traced algorithm.
    pub fn as_slice_untraced(&self) -> &[T] {
        &self.data
    }

    /// Untraced mutable view of the underlying data, for kernels that
    /// account for their accesses **out of band** with block events whose
    /// expansion is a pure function of `len()` (see
    /// [`Tracer::touch_cex_span`]). The caller is responsible for emitting
    /// a trace equivalent to the per-access one — never use this to skip
    /// tracing.
    pub fn as_mut_slice_untraced(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the buffer, returning the underlying vector (untraced; see
    /// [`TrackedBuf::as_slice_untraced`]).
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Access, Granularity, NullTracer, RecordingTracer};

    #[test]
    fn read_write_traced() {
        let mut tr = RecordingTracer::with_events(Granularity::Element);
        let mut buf = TrackedBuf::<u64>::zeroed(7, 4);
        buf.write(2, 99, &mut tr);
        assert_eq!(buf.read(2, &mut tr), 99);
        assert_eq!(
            tr.events().unwrap(),
            &[
                Access { region: 7, offset: 16, op: Op::Write },
                Access { region: 7, offset: 16, op: Op::Read },
            ]
        );
    }

    #[test]
    fn swap_trace_shape_is_input_independent() {
        // The trace of swap(i, j) must not depend on the values held.
        let run = |vals: [u64; 4]| {
            let mut tr = RecordingTracer::new(Granularity::Element);
            let mut buf = TrackedBuf::new(1, vals.to_vec());
            buf.swap_elems(0, 3, &mut tr);
            tr.digest()
        };
        assert_eq!(run([1, 2, 3, 4]), run([9, 9, 9, 9]));
    }

    #[test]
    fn cacheline_offsets() {
        let mut tr = RecordingTracer::with_events(Granularity::Cacheline);
        let buf = TrackedBuf::<f32>::zeroed(1, 64);
        // f32 = 4 bytes → 16 elements per 64-byte line.
        buf.read(0, &mut tr);
        buf.read(15, &mut tr);
        buf.read(16, &mut tr);
        let lines: Vec<u64> = tr.events().unwrap().iter().map(|a| a.offset).collect();
        assert_eq!(lines, vec![0, 0, 1]);
    }

    #[test]
    fn null_tracer_works() {
        let mut buf = TrackedBuf::<u32>::zeroed(0, 8);
        buf.write(1, 5, &mut NullTracer);
        assert_eq!(buf.read(1, &mut NullTracer), 5);
        assert_eq!(buf.as_slice_untraced(), &[0, 5, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn into_inner_returns_data() {
        let mut buf = TrackedBuf::<u8>::zeroed(0, 3);
        buf.write(0, 1, &mut NullTracer);
        assert_eq!(buf.into_inner(), vec![1, 0, 0]);
    }
}
