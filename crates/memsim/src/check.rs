//! Executable obliviousness checks (Definition 2.1).
//!
//! An algorithm `M` is fully oblivious when for any two same-length inputs
//! the access-pattern distributions coincide. The paper's algorithms are
//! *deterministically* oblivious (δ = 0, no randomness in the pattern), so
//! the check reduces to: run the algorithm on each input under a
//! [`RecordingTracer`] and require byte-identical access sequences. These
//! helpers are the test-side embodiment of Propositions 3.1, 3.2, 5.1, 5.2.

use crate::tracer::{Granularity, RecordingTracer};
use crate::TraceDigest;

/// Runs `f` under a fresh digest-only tracer and returns the trace digest.
pub fn trace_of<F>(granularity: Granularity, f: F) -> TraceDigest
where
    F: FnOnce(&mut RecordingTracer),
{
    let mut tr = RecordingTracer::new(granularity);
    f(&mut tr);
    tr.digest()
}

/// Asserts that `run` produces an identical access sequence for every input
/// in `inputs` (all inputs must have equal length in the paper's sense —
/// that is the caller's contract).
///
/// Panics with a diagnostic naming the offending input index otherwise.
pub fn assert_oblivious<I, F>(granularity: Granularity, inputs: &[I], mut run: F)
where
    F: FnMut(&I, &mut RecordingTracer),
{
    assert!(inputs.len() >= 2, "need at least two inputs to compare");
    let reference = trace_of(granularity, |tr| run(&inputs[0], tr));
    for (i, input) in inputs.iter().enumerate().skip(1) {
        let d = trace_of(granularity, |tr| run(input, tr));
        assert_eq!(
            d,
            reference,
            "access pattern for input #{i} diverges from input #0 \
             (lengths {} vs {}): algorithm is NOT oblivious at {granularity:?} granularity",
            d.len(),
            reference.len(),
        );
    }
}

/// Asserts that at least one pair of inputs yields *different* access
/// sequences — i.e. the algorithm leaks (Proposition 3.2's statistical
/// distance of 1 for some input pair).
pub fn assert_not_oblivious<I, F>(granularity: Granularity, inputs: &[I], mut run: F)
where
    F: FnMut(&I, &mut RecordingTracer),
{
    assert!(inputs.len() >= 2, "need at least two inputs to compare");
    let reference = trace_of(granularity, |tr| run(&inputs[0], tr));
    let any_diff =
        inputs.iter().skip(1).any(|input| trace_of(granularity, |tr| run(input, tr)) != reference);
    assert!(
        any_diff,
        "all {} inputs produced identical traces; expected a data-dependent pattern",
        inputs.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buf::TrackedBuf;
    use crate::tracer::Tracer;

    /// Linear scan: touches every element in order — oblivious.
    fn linear_scan(input: &[u64], tr: &mut RecordingTracer) {
        let buf = TrackedBuf::new(1, input.to_vec());
        let mut acc = 0u64;
        for i in 0..buf.len() {
            acc = acc.wrapping_add(buf.read(i, tr));
        }
        std::hint::black_box(acc);
    }

    /// Data-dependent walk: reads the element *named by* each value — leaky.
    fn pointer_chase(input: &[u64], tr: &mut RecordingTracer) {
        let buf = TrackedBuf::new(1, input.to_vec());
        for i in 0..buf.len() {
            let v = buf.read(i, tr) as usize % buf.len();
            buf.read(v, tr);
        }
    }

    #[test]
    fn linear_scan_is_oblivious() {
        let inputs = vec![vec![1u64, 2, 3, 4], vec![9, 9, 9, 9], vec![4, 3, 2, 1]];
        assert_oblivious(Granularity::Element, &inputs, |v, tr| linear_scan(v, tr));
        assert_oblivious(Granularity::Cacheline, &inputs, |v, tr| linear_scan(v, tr));
    }

    #[test]
    fn pointer_chase_leaks() {
        let inputs = vec![vec![0u64, 1, 2, 3], vec![3, 2, 1, 0]];
        assert_not_oblivious(Granularity::Element, &inputs, |v, tr| pointer_chase(v, tr));
    }

    #[test]
    #[should_panic(expected = "NOT oblivious")]
    fn assert_oblivious_catches_leaks() {
        let inputs = vec![vec![0u64, 1, 2, 3], vec![3, 2, 1, 0]];
        assert_oblivious(Granularity::Element, &inputs, |v, tr| pointer_chase(v, tr));
    }

    #[test]
    #[should_panic(expected = "identical traces")]
    fn assert_not_oblivious_catches_obliviousness() {
        let inputs = vec![vec![1u64, 2, 3, 4], vec![4, 3, 2, 1]];
        assert_not_oblivious(Granularity::Element, &inputs, |v, tr| linear_scan(v, tr));
    }

    #[test]
    fn cacheline_can_hide_what_element_reveals() {
        // Two inputs whose data-dependent accesses differ only *within* one
        // cacheline: element-granular traces differ, cacheline traces match.
        // This is the Baseline algorithm's cacheline optimization in
        // miniature (Section 5.1).
        let run = |input: &Vec<u64>, tr: &mut RecordingTracer| {
            let buf = TrackedBuf::new(1, input.clone());
            // Access the element indexed by input[0] % 8; u64 = 8 bytes, so
            // indices 0..8 live in the same 64-byte line.
            let idx = (buf.read(0, tr) % 8) as usize;
            buf.read(idx, tr);
        };
        let inputs = vec![vec![2u64; 8], vec![5u64; 8]];
        assert_not_oblivious(Granularity::Element, &inputs, run);
        assert_oblivious(Granularity::Cacheline, &inputs, run);
    }

    #[test]
    fn trace_of_captures_nothing_for_noop() {
        let d = trace_of(Granularity::Element, |_tr| {});
        assert!(d.is_empty());
    }

    #[test]
    fn tracer_trait_object_safety_not_required_but_generics_work() {
        // Ensure the Tracer trait composes with generic helpers.
        fn touch_n<T: Tracer>(tr: &mut T, n: u64) {
            for i in 0..n {
                tr.touch(0, i, 1, crate::tracer::Op::Read);
            }
        }
        let mut tr = RecordingTracer::new(Granularity::Element);
        touch_n(&mut tr, 5);
        assert_eq!(tr.stats().reads, 5);
    }
}
