//! The tracer trait and its null / recording implementations.

use crate::digest::TraceDigest;
use crate::CACHELINE_BYTES;

/// Identifies a logical memory region visible to the adversary.
///
/// The paper names two: `G` (concatenated client gradients) and `G*`
/// (the aggregated dense gradient). Region ids let a trace distinguish
/// accesses to distinct buffers the way distinct base addresses would.
pub type RegionId = u32;

/// Memory operation kind, matching the paper's `op ∈ {read, write}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One observed access: the paper's triple `(A[i], op, val)` with the value
/// omitted (values are ciphertext/enclave-private; the adversary observes
/// addresses and operations only — Section 3.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Access {
    /// Which buffer.
    pub region: RegionId,
    /// Granularity-adjusted offset within the buffer: the element index in
    /// [`Granularity::Element`] mode, the cacheline index in
    /// [`Granularity::Cacheline`] mode.
    pub offset: u64,
    /// Load or store.
    pub op: Op,
}

/// Observation granularity of the side channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Granularity {
    /// Byte/element-exact observation (e.g. a probe on the memory bus).
    Element,
    /// 64-byte cacheline observation, the practical SGX attack granularity
    /// (controlled-channel / cache attacks, Section 2.3 and Figure 7).
    Cacheline,
}

impl Granularity {
    #[inline]
    fn reduce(self, byte_off: u64) -> u64 {
        match self {
            Granularity::Element => byte_off,
            Granularity::Cacheline => byte_off / CACHELINE_BYTES,
        }
    }
}

/// The instrumentation hook. Algorithms call [`Tracer::touch`] for every
/// access to adversary-visible memory.
pub trait Tracer {
    /// Records an access of `len` bytes at byte offset `byte_off` in
    /// `region`.
    fn touch(&mut self, region: RegionId, byte_off: u64, len: u32, op: Op);

    /// Records a contiguous run of bitonic compare-exchanges as **one
    /// block event** (the sort kernel's batched trace API).
    ///
    /// The run covers comparators `first .. first + count` of a bitonic
    /// stage with partner distance `stride` (a power of two) over
    /// `elem_bytes`-sized elements. Comparator `t` exchanges elements
    ///
    /// ```text
    /// i = ((t & !(stride - 1)) << 1) | (t & (stride - 1)),   l = i + stride
    /// ```
    ///
    /// and its memory footprint is, by definition, `read i, read l,
    /// write i, write l` — exactly what the scalar network performs via
    /// `read_pair`/`write_pair`. The event is therefore a pure function of
    /// its arguments; the default implementation *expands* it into those
    /// per-element [`Tracer::touch`] calls, so recording tracers absorb a
    /// digest **identical** to the scalar network's at every granularity
    /// (the expansion rule — the block event's digest semantics). Tracers
    /// that discard events ([`NullTracer`]) override this with a no-op, so
    /// the batched kernel pays one virtual-call-free inlined no-op per
    /// block instead of four dispatches per comparator.
    #[inline]
    fn touch_cex_span(
        &mut self,
        region: RegionId,
        elem_bytes: u32,
        stride: u64,
        first: u64,
        count: u64,
    ) {
        debug_assert!(stride.is_power_of_two(), "comparator stride must be a power of two");
        let eb = elem_bytes as u64;
        for t in first..first + count {
            let i = ((t & !(stride - 1)) << 1) | (t & (stride - 1));
            let l = i + stride;
            self.touch(region, i * eb, elem_bytes, Op::Read);
            self.touch(region, l * eb, elem_bytes, Op::Read);
            self.touch(region, i * eb, elem_bytes, Op::Write);
            self.touch(region, l * eb, elem_bytes, Op::Write);
        }
    }

    /// Records a contiguous run of read-modify-write slot accesses as **one
    /// block event** (the Baseline aggregation's stripe-scan trace API).
    ///
    /// The run covers slots `first, first + stride, …` (`count` of them) of
    /// `elem_bytes`-sized elements; each slot's footprint is, by definition,
    /// `read slot, write slot` — exactly what the serial scan performs via
    /// `TrackedBuf::read`/`TrackedBuf::write`. Like [`Tracer::touch_cex_span`]
    /// the event is a pure function of its arguments: the default
    /// implementation expands it into those per-element [`Tracer::touch`]
    /// calls so recording tracers absorb a digest identical to the serial
    /// scan's at every granularity, while [`NullTracer`] overrides it with a
    /// no-op so batched kernels pay nothing per block.
    #[inline]
    fn touch_rw_stripe(
        &mut self,
        region: RegionId,
        elem_bytes: u32,
        first: u64,
        stride: u64,
        count: u64,
    ) {
        let eb = elem_bytes as u64;
        for t in 0..count {
            let j = first + t * stride;
            self.touch(region, j * eb, elem_bytes, Op::Read);
            self.touch(region, j * eb, elem_bytes, Op::Write);
        }
    }

    /// Whether this tracer keeps full event logs (used by code that can
    /// skip expensive bookkeeping otherwise).
    #[inline]
    fn is_recording(&self) -> bool {
        false
    }
}

/// A tracer that can observe a *parallel* oblivious region.
///
/// Data-parallel algorithms (the grouped aggregation of Section 5.3) hand
/// each thread its own [`ParallelTracer::Worker`] so workers never contend
/// on the parent, then merge every worker trace back **in a fixed,
/// data-independent order** (the public group schedule). Because both the
/// work split and the join order are functions of the input *shape* only,
/// forking cannot introduce a data-dependent access pattern: the merged
/// trace is deterministic for a given thread count, and
/// [`crate::assert_oblivious`]-style digest comparison remains sound.
///
/// The parent's digest after a join is a digest *of* the worker digests
/// (see [`TraceDigest::absorb_child`]) — still order-sensitive and
/// collision-resistant, but not equal to a serial replay of the same
/// events. Single-threaded runs should bypass fork/join entirely so that
/// `threads = 1` reproduces the exact historical serial trace.
pub trait ParallelTracer: Tracer {
    /// The per-thread tracer handed to one worker.
    type Worker: Tracer + Send;

    /// Creates a fresh worker tracer inheriting this tracer's
    /// configuration (granularity, event retention).
    fn fork_worker(&self) -> Self::Worker;

    /// Merges worker traces back into this tracer. The caller must supply
    /// the workers in a public, data-independent order; the merge itself
    /// is deterministic in that order.
    fn join_workers(&mut self, workers: impl IntoIterator<Item = Self::Worker>);
}

/// A tracer that compiles to nothing: used on the benchmark hot path.
#[derive(Default, Clone, Copy, Debug)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn touch(&mut self, _region: RegionId, _byte_off: u64, _len: u32, _op: Op) {}

    #[inline(always)]
    fn touch_cex_span(&mut self, _r: RegionId, _eb: u32, _stride: u64, _first: u64, _count: u64) {}

    #[inline(always)]
    fn touch_rw_stripe(&mut self, _r: RegionId, _eb: u32, _first: u64, _stride: u64, _count: u64) {}
}

impl ParallelTracer for NullTracer {
    type Worker = NullTracer;

    #[inline(always)]
    fn fork_worker(&self) -> NullTracer {
        NullTracer
    }

    #[inline(always)]
    fn join_workers(&mut self, _workers: impl IntoIterator<Item = NullTracer>) {}
}

/// Aggregate counters for a recorded trace.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracerStats {
    /// Number of loads observed.
    pub reads: u64,
    /// Number of stores observed.
    pub writes: u64,
}

impl TracerStats {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A tracer that records the access sequence.
///
/// Always maintains a streaming [`TraceDigest`] and counters; optionally
/// (when built with [`RecordingTracer::with_events`]) retains the full
/// event list, which the attack pipeline consumes to recover sparsified
/// gradient indices.
pub struct RecordingTracer {
    granularity: Granularity,
    digest: TraceDigest,
    stats: TracerStats,
    events: Option<Vec<Access>>,
    /// Optional event cap to guard against runaway memory in tests.
    max_events: usize,
}

impl RecordingTracer {
    /// Digest-only tracer at the given granularity.
    pub fn new(granularity: Granularity) -> Self {
        RecordingTracer {
            granularity,
            digest: TraceDigest::new(),
            stats: TracerStats::default(),
            events: None,
            max_events: usize::MAX,
        }
    }

    /// Tracer that also retains the full event sequence.
    pub fn with_events(granularity: Granularity) -> Self {
        let mut t = Self::new(granularity);
        t.events = Some(Vec::new());
        t
    }

    /// Caps the retained event list at `cap` events (digest and stats keep
    /// running past the cap).
    pub fn with_event_cap(mut self, cap: usize) -> Self {
        self.max_events = cap;
        self
    }

    /// The observation granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Returns the streaming digest of everything observed so far.
    pub fn digest(&self) -> TraceDigest {
        self.digest
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TracerStats {
        self.stats
    }

    /// The retained events, if this tracer was built with
    /// [`RecordingTracer::with_events`].
    pub fn events(&self) -> Option<&[Access]> {
        self.events.as_deref()
    }

    /// Distinct offsets touched in `region` (the index-set leak of
    /// Proposition 3.2: what the attacker extracts from the trace).
    pub fn touched_offsets(&self, region: RegionId) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .events
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .filter(|a| a.region == region)
            .map(|a| a.offset)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl Tracer for RecordingTracer {
    #[inline]
    fn touch(&mut self, region: RegionId, byte_off: u64, len: u32, op: Op) {
        // An element access is one event; at cacheline granularity an access
        // spanning a line boundary shows up as touches on each line covered.
        let (first, last) = match self.granularity {
            Granularity::Element => (byte_off, byte_off),
            Granularity::Cacheline => (
                self.granularity.reduce(byte_off),
                self.granularity.reduce(byte_off + len.max(1) as u64 - 1),
            ),
        };
        let mut unit = first;
        loop {
            self.digest.absorb(region, unit, op);
            match op {
                Op::Read => self.stats.reads += 1,
                Op::Write => self.stats.writes += 1,
            }
            if let Some(ev) = &mut self.events {
                if ev.len() < self.max_events {
                    ev.push(Access { region, offset: unit, op });
                }
            }
            if unit >= last {
                break;
            }
            unit += 1;
        }
    }

    #[inline]
    fn is_recording(&self) -> bool {
        true
    }
}

impl ParallelTracer for RecordingTracer {
    type Worker = RecordingTracer;

    fn fork_worker(&self) -> RecordingTracer {
        let mut w = RecordingTracer::new(self.granularity);
        if self.events.is_some() {
            // Each worker inherits the parent's cap so a capped parent
            // keeps parallel tracing memory bounded (≤ cap per live
            // worker); join enforces the parent cap again on the merged
            // list. Below the cap the retained events are the full
            // multiset; once the cap binds, the retained prefix follows
            // the parallel join order rather than the serial interleave
            // (stats and digest stay exact either way, as for a serial
            // capped tracer).
            w.events = Some(Vec::new());
            w.max_events = self.max_events;
        }
        w
    }

    fn join_workers(&mut self, workers: impl IntoIterator<Item = RecordingTracer>) {
        for w in workers {
            debug_assert_eq!(w.granularity, self.granularity, "worker granularity mismatch");
            self.digest.absorb_child(w.digest);
            self.stats.reads += w.stats.reads;
            self.stats.writes += w.stats.writes;
            if let (Some(ev), Some(wev)) = (&mut self.events, w.events) {
                let room = self.max_events.saturating_sub(ev.len());
                ev.extend(wev.into_iter().take(room));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_silent() {
        let mut t = NullTracer;
        t.touch(0, 0, 8, Op::Read);
        assert!(!t.is_recording());
    }

    #[test]
    fn element_granularity_records_each_access() {
        let mut t = RecordingTracer::with_events(Granularity::Element);
        t.touch(1, 0, 8, Op::Read);
        t.touch(1, 8, 8, Op::Write);
        assert_eq!(t.stats(), TracerStats { reads: 1, writes: 1 });
        assert_eq!(
            t.events().unwrap(),
            &[
                Access { region: 1, offset: 0, op: Op::Read },
                Access { region: 1, offset: 8, op: Op::Write },
            ]
        );
    }

    #[test]
    fn cacheline_granularity_coalesces_within_line() {
        let mut t = RecordingTracer::with_events(Granularity::Cacheline);
        t.touch(1, 0, 8, Op::Read); // line 0
        t.touch(1, 56, 8, Op::Read); // line 0 still
        t.touch(1, 64, 8, Op::Read); // line 1
        let lines: Vec<u64> = t.events().unwrap().iter().map(|a| a.offset).collect();
        assert_eq!(lines, vec![0, 0, 1]);
    }

    #[test]
    fn straddling_access_touches_both_lines() {
        let mut t = RecordingTracer::with_events(Granularity::Cacheline);
        t.touch(1, 60, 8, Op::Write); // bytes 60..68 span lines 0 and 1
        let lines: Vec<u64> = t.events().unwrap().iter().map(|a| a.offset).collect();
        assert_eq!(lines, vec![0, 1]);
        assert_eq!(t.stats().writes, 2);
    }

    #[test]
    fn digests_differ_for_different_sequences() {
        let mut a = RecordingTracer::new(Granularity::Element);
        a.touch(1, 0, 4, Op::Read);
        a.touch(1, 4, 4, Op::Read);
        let mut b = RecordingTracer::new(Granularity::Element);
        b.touch(1, 4, 4, Op::Read);
        b.touch(1, 0, 4, Op::Read);
        assert_ne!(a.digest(), b.digest(), "order must matter");
    }

    #[test]
    fn digests_equal_for_equal_sequences() {
        let build = || {
            let mut t = RecordingTracer::new(Granularity::Element);
            for i in 0..100 {
                t.touch(2, i * 4, 4, if i % 3 == 0 { Op::Write } else { Op::Read });
            }
            t.digest()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn touched_offsets_dedup_sorted() {
        let mut t = RecordingTracer::with_events(Granularity::Element);
        for off in [12u64, 4, 12, 0, 4] {
            t.touch(3, off, 4, Op::Write);
        }
        t.touch(9, 100, 4, Op::Write); // other region ignored
        assert_eq!(t.touched_offsets(3), vec![0, 4, 12]);
    }

    #[test]
    fn fork_join_accumulates_stats_and_events_in_order() {
        let mut parent = RecordingTracer::with_events(Granularity::Element);
        parent.touch(1, 0, 1, Op::Read);
        let mut w0 = parent.fork_worker();
        let mut w1 = parent.fork_worker();
        w0.touch(2, 10, 1, Op::Write);
        w1.touch(3, 20, 1, Op::Read);
        parent.join_workers([w0, w1]);
        assert_eq!(parent.stats(), TracerStats { reads: 2, writes: 1 });
        assert_eq!(
            parent.events().unwrap(),
            &[
                Access { region: 1, offset: 0, op: Op::Read },
                Access { region: 2, offset: 10, op: Op::Write },
                Access { region: 3, offset: 20, op: Op::Read },
            ]
        );
    }

    #[test]
    fn join_digest_depends_on_worker_order_not_thread_timing() {
        let run = |swap: bool| {
            let mut parent = RecordingTracer::new(Granularity::Element);
            let mut a = parent.fork_worker();
            let mut b = parent.fork_worker();
            a.touch(1, 1, 1, Op::Read);
            b.touch(1, 2, 1, Op::Read);
            if swap {
                parent.join_workers([b, a]);
            } else {
                parent.join_workers([a, b]);
            }
            parent.digest()
        };
        assert_eq!(run(false), run(false), "deterministic for a fixed join order");
        assert_ne!(run(false), run(true), "join order is part of the trace identity");
    }

    #[test]
    fn digest_only_parent_forks_digest_only_workers() {
        let parent = RecordingTracer::new(Granularity::Cacheline);
        let w = parent.fork_worker();
        assert_eq!(w.granularity(), Granularity::Cacheline);
        assert!(w.events().is_none());
    }

    #[test]
    fn join_respects_parent_event_cap() {
        let mut parent = RecordingTracer::with_events(Granularity::Element).with_event_cap(2);
        let mut w = parent.fork_worker();
        for i in 0..5 {
            w.touch(1, i, 1, Op::Read);
        }
        assert_eq!(w.events().unwrap().len(), 2, "workers inherit the cap (bounded memory)");
        parent.join_workers([w]);
        assert_eq!(parent.events().unwrap().len(), 2);
        assert_eq!(parent.stats().reads, 5, "stats keep running past the cap");
    }

    #[test]
    fn null_tracer_fork_join_is_free() {
        let mut t = NullTracer;
        let mut w = t.fork_worker();
        w.touch(0, 0, 1, Op::Read);
        t.join_workers([w]);
        assert!(!t.is_recording());
    }

    #[test]
    fn cex_span_expands_to_scalar_comparator_sequence() {
        // The block event must be digest-identical to the per-access trace
        // of the scalar compare-exchange loop it summarizes.
        let elem = 8u32;
        for (stride, first, count) in [(1u64, 0u64, 8u64), (4, 0, 8), (4, 2, 5), (8, 3, 9)] {
            let mut blocked = RecordingTracer::new(Granularity::Element);
            blocked.touch_cex_span(3, elem, stride, first, count);
            let mut scalar = RecordingTracer::new(Granularity::Element);
            for t in first..first + count {
                let i = ((t & !(stride - 1)) << 1) | (t & (stride - 1));
                let l = i + stride;
                scalar.touch(3, i * 8, elem, Op::Read);
                scalar.touch(3, l * 8, elem, Op::Read);
                scalar.touch(3, i * 8, elem, Op::Write);
                scalar.touch(3, l * 8, elem, Op::Write);
            }
            assert_eq!(blocked.digest(), scalar.digest(), "stride {stride} first {first}");
            assert_eq!(blocked.stats(), scalar.stats());
        }
    }

    #[test]
    fn cex_span_expansion_respects_granularity() {
        // At cacheline granularity the expansion goes through the same
        // reduce() as element accesses (8-byte elements → 8 per line).
        let mut t = RecordingTracer::with_events(Granularity::Cacheline);
        t.touch_cex_span(1, 8, 8, 0, 1); // comparator 0: elements 0 and 8
        let lines: Vec<u64> = t.events().unwrap().iter().map(|a| a.offset).collect();
        assert_eq!(lines, vec![0, 1, 0, 1]);
    }

    #[test]
    fn cex_span_splitting_is_associative() {
        // One span of 16 comparators ≡ any contiguous split of it: the
        // batched kernel may chunk spans at an arbitrary fixed block size.
        let whole = {
            let mut t = RecordingTracer::new(Granularity::Element);
            t.touch_cex_span(0, 8, 4, 0, 16);
            t.digest()
        };
        let split = {
            let mut t = RecordingTracer::new(Granularity::Element);
            t.touch_cex_span(0, 8, 4, 0, 5);
            t.touch_cex_span(0, 8, 4, 5, 3);
            t.touch_cex_span(0, 8, 4, 8, 8);
            t.digest()
        };
        assert_eq!(whole, split);
    }

    #[test]
    fn rw_stripe_expands_to_serial_scan_sequence() {
        // The block event must be digest-identical to the per-access trace
        // of the serial read/write stripe scan it summarizes.
        for (first, stride, count) in [(0u64, 16u64, 4u64), (3, 16, 4), (7, 1, 9), (2, 8, 1)] {
            let mut blocked = RecordingTracer::new(Granularity::Element);
            blocked.touch_rw_stripe(2, 4, first, stride, count);
            let mut serial = RecordingTracer::new(Granularity::Element);
            for t in 0..count {
                let j = first + t * stride;
                serial.touch(2, j * 4, 4, Op::Read);
                serial.touch(2, j * 4, 4, Op::Write);
            }
            assert_eq!(blocked.digest(), serial.digest(), "first {first} stride {stride}");
            assert_eq!(blocked.stats(), serial.stats());
        }
    }

    #[test]
    fn null_tracer_cex_span_is_silent() {
        let mut t = NullTracer;
        t.touch_cex_span(0, 8, 2, 0, 100);
        assert!(!t.is_recording());
    }

    #[test]
    fn event_cap_limits_retention_not_stats() {
        let mut t = RecordingTracer::with_events(Granularity::Element).with_event_cap(3);
        for i in 0..10 {
            t.touch(1, i, 1, Op::Read);
        }
        assert_eq!(t.events().unwrap().len(), 3);
        assert_eq!(t.stats().reads, 10);
    }
}
