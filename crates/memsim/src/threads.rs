//! Process-wide thread-count policy for parallel oblivious regions.
//!
//! Lives in `olive-memsim` (rather than `olive-core`) because every layer
//! that runs a data-parallel oblivious region — the grouped aggregation in
//! `olive-core`, the intra-sort stage parallelism in `olive-oblivious` —
//! already depends on this crate for its tracer. One knob controls them
//! all:
//!
//! * `OLIVE_THREADS=<n>` in the environment pins the default;
//! * otherwise the default is `available_parallelism()`, capped at 8
//!   (matching SGX enclave TCS budgets, and past which the memory-bound
//!   sort shows no gain);
//! * every parallel entry point also takes an explicit thread-count
//!   parameter (`*_with_threads`) that overrides the default;
//! * `1` runs the exact historical serial code path.

use std::sync::OnceLock;

/// Hard cap on the default worker count (explicit parameters may exceed it).
const MAX_DEFAULT_THREADS: usize = 8;

/// The process-wide default worker count for parallel oblivious regions:
/// `OLIVE_THREADS` if set to a positive integer, else
/// `available_parallelism().min(8)`. Read once and cached — changing the
/// environment mid-process has no effect; use the `*_with_threads` APIs
/// for per-call control.
pub fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("OLIVE_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
            eprintln!("OLIVE_THREADS={v:?} is not a positive integer; using auto default");
        }
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(MAX_DEFAULT_THREADS)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive_and_stable() {
        let t = default_threads();
        assert!(t >= 1);
        assert_eq!(t, default_threads(), "OnceLock caches the decision");
    }
}
