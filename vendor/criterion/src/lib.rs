//! Offline, API-compatible subset of the Criterion benchmark harness.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of Criterion's API that the
//! `olive-bench` suite uses: `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model (deliberately simple, but real): each benchmark is
//! warmed up, then timed over enough iterations to fill a target
//! measurement window (default 300 ms, configurable via `sample_size`
//! scaling and the `OLIVE_BENCH_MS` environment variable). The harness
//! reports mean wall-clock time per iteration and, when a throughput is
//! declared, bytes/s. Results print to stdout in a stable
//! `bench: <group>/<id> ... <mean> <unit>/iter` format that the
//! baseline-recording scripts parse. There is no statistical machinery
//! (no outlier rejection, no HTML reports) — trend tracking lives in
//! `CHANGES.md` baselines instead.
//!
//! Machine-readable output: when `OLIVE_BENCH_JSON=<path>` is set, each
//! bench binary merges its results into a `{"bench_name": mean_ns, …}`
//! JSON object at that path on exit (merge, not overwrite, because
//! `cargo bench` runs one process per bench target and they share the
//! file).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results recorded by [`run_one`] for the optional JSON report:
/// `(bench name, mean ns/iter)` in completion order.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Opaque-to-the-optimizer identity function, mirroring
/// `criterion::black_box`. Uses a volatile read via `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter, shown as
    /// `name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Anything acceptable as a benchmark name: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Render to the display name used in reports.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    window: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly, timing the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: time single iterations until we can
        // estimate how many fit in the measurement window.
        let mut one = Duration::ZERO;
        let mut warm = 0u64;
        let warm_start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            one += t0.elapsed();
            warm += 1;
            if warm >= 3 && warm_start.elapsed() >= self.window / 10 {
                break;
            }
            if warm >= 50 {
                break;
            }
        }
        let per_iter = one / warm as u32;
        let target = if per_iter.is_zero() {
            1000
        } else {
            (self.window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let t0 = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.total = t0.elapsed();
        self.iters_done = target;
    }
}

/// Accumulated settings for a group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    window: Duration,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample-size knob. This harness uses it to scale the
    /// measurement window down for expensive benchmarks (Criterion's
    /// default sample size is 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let base = self.criterion.window;
        self.window = base.mul_f64((n.max(10) as f64 / 100.0).min(1.0));
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Register and run a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_name());
        run_one(&name, self.window, self.throughput, |b| f(b));
        self
    }

    /// Register and run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_name());
        run_one(&name, self.window, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (reporting already happened per-benchmark).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, window: Duration, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher { iters_done: 0, total: Duration::ZERO, window };
    f(&mut b);
    if b.iters_done == 0 {
        println!("bench: {name} ... no iterations recorded");
        return;
    }
    let per_iter_ns = b.total.as_nanos() as f64 / b.iters_done as f64;
    RESULTS.lock().unwrap().push((name.to_string(), per_iter_ns));
    let human = human_time(per_iter_ns);
    match tp {
        Some(Throughput::Bytes(n)) => {
            let gbps = n as f64 / per_iter_ns; // bytes/ns == GB/s
            println!(
                "bench: {name} ... {human}/iter ({:.3} GiB/s, {} iters)",
                gbps * 1e9 / (1u64 << 30) as f64,
                b.iters_done
            );
        }
        Some(Throughput::Elements(n)) => {
            println!(
                "bench: {name} ... {human}/iter ({:.3} Melem/s, {} iters)",
                n as f64 / per_iter_ns * 1e3,
                b.iters_done
            );
        }
        None => println!("bench: {name} ... {human}/iter ({} iters)", b.iters_done),
    }
}

/// Writes (merging) this process's bench results into the JSON file named
/// by `OLIVE_BENCH_JSON`, if set. Called by [`criterion_main!`] after all
/// groups run; no-op without the env var. The file holds one flat JSON
/// object `{"bench_name": mean_ns, …}`, one entry per line; entries from
/// earlier bench binaries are preserved, same-name entries are replaced.
pub fn flush_json() {
    let Ok(path) = std::env::var("OLIVE_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let fresh = RESULTS.lock().unwrap();
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let out = merge_results_json(&existing, &fresh);
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("OLIVE_BENCH_JSON: failed to write {path}: {e}");
    }
}

/// Merges `fresh` results into the JSON object serialized in `existing`
/// and returns the new serialization. The format is this shim's own
/// (stable, one `"name": ns` entry per line), so line-based parsing
/// round-trips exactly; entries from earlier bench binaries are
/// preserved, same-name entries are replaced.
fn merge_results_json(existing: &str, fresh: &[(String, f64)]) -> String {
    let mut merged: Vec<(String, f64)> = Vec::new();
    for line in existing.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some((name, value)) = line.rsplit_once(':') {
            // Strip exactly one quote per side: a name's own escaped
            // trailing quote must survive for the round-trip to be exact.
            let name = name.trim();
            let name = name.strip_prefix('"').unwrap_or(name);
            let name = name.strip_suffix('"').unwrap_or(name);
            if let Ok(ns) = value.trim().parse::<f64>() {
                if !name.is_empty() {
                    merged.push((unescape_json(name), ns));
                }
            }
        }
    }
    for (name, ns) in fresh {
        match merged.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = *ns,
            None => merged.push((name.clone(), *ns)),
        }
    }
    let mut out = String::from("{\n");
    for (i, (name, ns)) in merged.iter().enumerate() {
        let comma = if i + 1 == merged.len() { "" } else { "," };
        out.push_str(&format!("  \"{}\": {:.1}{}\n", escape_json(name), ns, comma));
    }
    out.push_str("}\n");
    out
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape_json(s: &str) -> String {
    s.replace("\\\"", "\"").replace("\\\\", "\\")
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Top-level benchmark harness state.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms =
            std::env::var("OLIVE_BENCH_MS").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(300);
        Criterion { window: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let window = self.window;
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None, window }
    }

    /// Register and run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let window = self.window;
        run_one(name, window, None, |b| f(b));
        self
    }
}

/// Collect benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` for a benchmark binary, mirroring
/// `criterion::criterion_main!`. Benchmark targets using this must set
/// `harness = false` in `Cargo.toml`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; a bench
            // pass should be a no-op there, matching Criterion.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
            $crate::flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b =
            Bencher { iters_done: 0, total: Duration::ZERO, window: Duration::from_millis(5) };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iters_done > 0);
        assert!(count >= b.iters_done);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("sort", 128).to_string(), "sort/128");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn json_merge_round_trips_and_replaces() {
        let first = merge_results_json("", &[("a/1".into(), 10.0), ("b".into(), 2.5)]);
        assert_eq!(first, "{\n  \"a/1\": 10.0,\n  \"b\": 2.5\n}\n");
        // A second binary adds one entry and re-measures an old one.
        let second = merge_results_json(&first, &[("b".into(), 3.0), ("c".into(), 7.0)]);
        assert_eq!(second, "{\n  \"a/1\": 10.0,\n  \"b\": 3.0,\n  \"c\": 7.0\n}\n");
        // Idempotent on replay.
        assert_eq!(merge_results_json(&second, &[]), second);
    }

    #[test]
    fn json_escaping_round_trips() {
        // Quotes mid-name, at the end, and backslashes: every shape must
        // merge (replace) rather than duplicate on re-parse.
        for odd in ["we\"ird\\name", "ends_with_quote\"", "\"starts", "trailing_backslash\\"] {
            let one = merge_results_json("", &[(odd.to_string(), 1.0)]);
            let two = merge_results_json(&one, &[(odd.to_string(), 2.0)]);
            assert!(two.contains(": 2.0"), "{odd}: {two}");
            assert_eq!(two.matches(": 2").count(), 1, "{odd} must merge, not duplicate");
        }
    }
}
