//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of proptest that the Olive integration
//! suite uses: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`], [`option::of`], [`any`], the
//! [`proptest!`] macro, and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Differences from real proptest, by design:
//! * **no shrinking** — a failing case reports its seed and case index
//!   so it can be replayed deterministically, but is not minimized;
//! * **deterministic seeding** — case `i` of test `t` derives its RNG
//!   seed from `hash(t) ^ i`, so failures reproduce across runs and
//!   machines without a persistence file;
//! * rejected cases ([`prop_assume!`]) are retried up to a global cap
//!   rather than tracked per-strategy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating a test case.
pub type TestRng = SmallRng;

/// Why a single generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test as a whole fails.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; the case is skipped.
    Reject,
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a strategy that post-processes generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives this workspace
/// needs.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: core::marker::PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length specification for [`vec`]: a `usize` range.
    pub trait SizeRange {
        /// Sample a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`
    /// and whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            // Match real proptest's default 3:1 Some:None weighting
            // closely enough: 75% Some.
            if rng.gen_bool(0.75) {
                Some(self.inner.new_value(rng))
            } else {
                None
            }
        }
    }

    /// A strategy producing `Some` of the inner strategy most of the
    /// time and `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's identity.
fn seed_for(file: &str, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes().chain(name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Execute one `proptest!`-generated test: run `config.cases` cases,
/// panicking with a replayable (seed, case) identity on failure.
///
/// Not part of real proptest's public API; the [`proptest!`] macro is
/// the intended entry point.
pub fn run_proptest<F>(config: &ProptestConfig, file: &str, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = seed_for(file, name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    let mut i = 0u64;
    while passed < config.cases {
        let seed = base ^ i;
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest {name}: too many rejected cases ({rejected}); \
                     loosen the prop_assume! or the strategies"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name} failed at case {i} (seed {seed:#x}, {file}):\n{msg}");
            }
        }
        i += 1;
    }
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u32..100, v in vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_proptest(&__config, file!(), stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::new_value(&($strat), __rng);)+
                    #[allow(unreachable_code)]
                    (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip (reject) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection::vec;
    pub use crate::option;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(
            v in vec((0u32..10, 0u64..5), 1..=8).prop_map(|pairs| {
                pairs.into_iter().map(|(a, _)| a).collect::<Vec<u32>>()
            })
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 8);
            prop_assert!(v.iter().all(|&a| a < 10));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn option_of_produces_both(xs in vec(option::of(0u64..10), 64..=64)) {
            // With 75% Some over 64 draws, both variants should appear.
            prop_assert!(xs.iter().any(|x| x.is_some()));
            prop_assert!(xs.iter().any(|x| x.is_none()));
        }
    }

    #[test]
    fn failing_case_reports_seed() {
        let config = ProptestConfig::with_cases(8);
        let result = std::panic::catch_unwind(|| {
            crate::run_proptest(&config, file!(), "always_fails", |_rng| {
                Err(crate::TestCaseError::Fail("boom".into()))
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        for run in 0..2 {
            let mut values = Vec::new();
            crate::run_proptest(&ProptestConfig::with_cases(8), file!(), "determinism", |rng| {
                values.push(crate::Strategy::new_value(&(0u64..1000), rng));
                Ok(())
            });
            if run == 0 {
                first = values;
            } else {
                assert_eq!(first, values);
            }
        }
    }
}
