//! Offline, API-compatible subset of the `rand` crate (0.8-era surface).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the exact slice of `rand` the Olive reproduction
//! uses: [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator behind [`rngs::SmallRng`] is xoshiro256++ seeded via
//! SplitMix64 — the same construction the real `rand` crate uses for
//! `SmallRng` on 64-bit targets — so statistical quality is adequate for
//! the simulation workloads here. Nothing in this crate is
//! cryptographically secure, which matches how the workspace uses it
//! (all security-relevant randomness lives in `olive-crypto`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A random number generator core: a stream of `u64`s.
///
/// Matches the shape of `rand_core::RngCore` closely enough for this
/// workspace: everything is derived from [`RngCore::next_u64`].
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A type that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa-ish bits -> uniform in [0, 1).
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Uniform integer in `[0, span)` via Lemire's multiply-shift with a
/// rejection step to remove modulo bias. `span` must be non-zero.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection zone: values below 2^64 mod span are biased.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fill a mutable slice of bytes with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for all RNGs here).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// Snapshot the internal xoshiro256++ state, e.g. to persist the
        /// generator across a checkpoint/restore boundary.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a snapshot taken with
        /// [`SmallRng::state`]. The restored generator continues the
        /// exact output stream of the snapshotted one.
        pub fn from_state(s: [u64; 4]) -> Self {
            // An all-zero state is a fixed point of xoshiro and can never
            // be produced by `state()` on a properly seeded generator, so
            // reuse the same perturbation as `from_seed` defensively.
            if s == [0, 0, 0, 0] {
                return <Self as SeedableRng>::from_seed([0u8; 32]);
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; perturb it.
            if s == [0, 0, 0, 0] {
                let mut sm = SplitMix64 { state: 0xDEAD_BEEF };
                for word in s.iter_mut() {
                    *word = sm.next();
                }
            }
            SmallRng { s }
        }
    }

    /// Alias: the workspace never needs a CSPRNG from this crate.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
        // Mean of U[0,1) over 10k draws should be near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn state_snapshot_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(9);
        let _ = a.gen::<u64>();
        let snap = a.state();
        let mut b = SmallRng::from_state(snap);
        for _ in 0..50 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn full_u64_range_inclusive() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Must not overflow or hang.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
